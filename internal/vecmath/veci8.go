package vecmath

import (
	"fmt"
	"math"
)

// int8 quantized counterparts of the scoring kernels — the tier below the
// float32 slabs. Each factor row is quantized independently with a
// per-row affine code: codes c ∈ [−127, 127] reconstruct as
// scale·c + offset, where offset is the row's value midpoint and scale
// spans its value range in 254 steps. The query is quantized once per
// request with a symmetric code (offset 0). A row score then decomposes
// as
//
//	score ≈ (qscale·scale_r)·⟨u, c_r⟩ + offset_r·Σq + bias_r
//
// where ⟨u, c_r⟩ is a pure int8×int8 dot accumulated in int32 — EXACT
// integer arithmetic, so the dot is identical in any accumulation order
// and a blocked multi-row, multi-query sweep is trivially bitwise equal
// to the row-at-a-time kernel; only the short float64 combine above
// rounds, and both kernels share it statement by statement. The
// quantization error is measured (not estimated) during encoding and
// surfaced per slab, so the serving pipeline can certify an exact-rescore
// boundary exactly as the f32 tier does; see model.ScoringIndex's
// ErrBoundI8.
//
// Everything here assumes finite inputs; model.Load rejects non-finite
// factor payloads so hostile NaN/Inf rows die at load time, not in a
// scoring loop.

// i8Levels is the span of the affine code: hi−lo maps across 254 steps so
// codes stay within [−127, 127] (the symmetric int8 range; −128 is
// unused, keeping negation safe).
const i8Levels = 254

// QuantizeRow encodes one factor row with the per-row affine code and
// returns the code parameters plus the row's measured maximum
// reconstruction error max_j |src[j] − (scale·dst[j] + offset)|. A
// constant row gets scale 0 and reconstructs exactly through its offset.
// It panics if the lengths differ.
func QuantizeRow(dst []int8, src []float64) (scale, offset, maxErr float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: QuantizeRow length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		return 0, 0, 0
	}
	lo, hi := src[0], src[0]
	for _, v := range src[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// midpoint as lo + half-range (not (lo+hi)/2) so huge-magnitude rows
	// cannot overflow the intermediate sum
	offset = lo + (hi-lo)/2
	scale = (hi - lo) / i8Levels
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		// constant row (exact through offset), or a degenerate row whose
		// range does not quantize; codes are zero either way and the
		// measured error reports the truth
		for i := range dst {
			dst[i] = 0
		}
		for _, v := range src {
			e := math.Abs(v - offset)
			if e > maxErr || math.IsNaN(e) {
				maxErr = e
			}
		}
		if math.IsNaN(maxErr) {
			maxErr = math.Inf(1)
		}
		scale = 0
		return scale, offset, maxErr
	}
	for i, v := range src {
		c := math.Round((v - offset) / scale)
		switch {
		case c >= 127:
			c = 127
		case c <= -127:
			c = -127
		case math.IsNaN(c):
			c = 0
		}
		dst[i] = int8(c)
		// measure against the same reconstruction expression the bound
		// advertises: fl(scale·code + offset)
		e := math.Abs(v - (scale*float64(dst[i]) + offset))
		if e > maxErr {
			maxErr = e
		}
	}
	return scale, offset, maxErr
}

// QuantizeQuery encodes the query with a symmetric code (codes reconstruct
// as qscale·u[j], no offset) and returns the code step, the exact float64
// sum Σ q[j] the combine needs for the offset term, and the measured total
// absolute encoding error Σ_j |q[j] − qscale·u[j]| the certificate charges
// against the item scales. A zero (or empty) query encodes as all-zero
// codes with qscale 0, exactly. It panics if the lengths differ.
func QuantizeQuery(dst []int8, q []float64) (qscale, sumQ, sumAbsErr float64) {
	if len(dst) != len(q) {
		panic(fmt.Sprintf("vecmath: QuantizeQuery length mismatch %d vs %d", len(dst), len(q)))
	}
	maxAbs := MaxAbs(q)
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0, 0, 0
	}
	qscale = maxAbs / 127
	for i, v := range q {
		c := math.Round(v / qscale)
		switch {
		case c >= 127:
			c = 127
		case c <= -127:
			c = -127
		case math.IsNaN(c):
			c = 0
		}
		dst[i] = int8(c)
		sumQ += v
		sumAbsErr += math.Abs(v - qscale*float64(dst[i]))
	}
	if math.IsNaN(sumAbsErr) || math.IsInf(sumAbsErr, 0) {
		sumAbsErr = math.Inf(1)
	}
	return qscale, sumQ, sumAbsErr
}

// DotI8 returns ⟨a, b⟩ accumulated in int32 — exact for any length up to
// MaxDotLenI8, so unlike the float kernels the accumulation order is
// irrelevant and every sweep shape — including the AVX2/NEON assembly
// arm, whose int32 lanes wrap mod 2³² exactly like the reference's
// accumulator — produces the identical integer. It panics if the lengths
// differ.
func DotI8(a, b []int8) int32 {
	if len(a) != len(b) {
		panicLen("DotI8", len(a), len(b))
	}
	if simdActive {
		if n8 := len(a) &^ 7; n8 > 0 {
			s := dotI8SIMD(&a[0], &b[0], n8)
			for i := n8; i < len(a); i++ {
				s += int32(a[i]) * int32(b[i])
			}
			return s
		}
	}
	return dotI8Ref(a, b)
}

// DotI8Ref is the pure-Go reference implementation of DotI8, exported so
// benchmarks can pit the dispatch arms against each other on any machine.
// Its result is bitwise identical to DotI8's for every input. It panics
// if the lengths differ.
func DotI8Ref(a, b []int8) int32 {
	if len(a) != len(b) {
		panicLen("DotI8Ref", len(a), len(b))
	}
	return dotI8Ref(a, b)
}

func dotI8Ref(a, b []int8) int32 {
	var s int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += int32(a[i])*int32(b[i]) + int32(a[i+1])*int32(b[i+1]) +
			int32(a[i+2])*int32(b[i+2]) + int32(a[i+3])*int32(b[i+3])
	}
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// MaxDotLenI8 is the longest vector DotI8 is exact for: every partial sum
// is bounded by len·127², which must stay inside int32. Factor
// dimensionalities are orders of magnitude smaller; the scoring index
// refuses to certify int8 results past this bound rather than risk silent
// wraparound.
const MaxDotLenI8 = (1<<31 - 1) / (127 * 127)

// DotBiasI8 is the fused row kernel of the int8 tier: the exact integer
// dot followed by the short float64 combine
//
//	(qscale·scale)·dot + offset·Σq + bias
//
// evaluated in single-rounded steps. MatVecBiasI8 and MatVecBiasI8Multi
// replicate the combine statement for statement, so a score is bitwise
// identical whether computed row-at-a-time or in any blocked sweep. It
// panics if the lengths differ.
func DotBiasI8(u, row []int8, scale, offset, bias, qscale, sumQ float64) float64 {
	d := DotI8(u, row)
	// explicit intermediates force one rounding per step (no fused
	// multiply-add ambiguity), pinning the combine to a single bit pattern
	// across every kernel that replicates these statements
	m := qscale * scale
	a := m * float64(d)
	c := offset * sumQ
	s := a + c
	return s + bias
}

// MatVecBiasI8 sweeps a contiguous row-major int8 slab: dst[r] gets the
// combined score of row r against the quantized query u. Rows are
// processed four at a time (the integer dots pipeline independently and
// the loads of u are shared); the combine is the exact statement sequence
// of DotBiasI8, so blocked and row-wise scores are bitwise identical. It
// panics when the slab size is not len(dst)*k or a parameter array's
// length differs from dst.
func MatVecBiasI8(factors []int8, k int, scale, offset, bias []float64, u []int8, qscale, sumQ float64, dst []float64) {
	rows := len(dst)
	if len(factors) != rows*k {
		panicSlab("MatVecBiasI8", len(factors), rows, k)
	}
	if len(scale) != rows || len(offset) != rows || len(bias) != rows {
		panic(fmt.Sprintf("vecmath: MatVecBiasI8 param lengths %d/%d/%d != rows %d", len(scale), len(offset), len(bias), rows))
	}
	if len(u) != k {
		panicQueryLen("MatVecBiasI8", len(u), k)
	}
	n8 := k &^ 7
	r := 0
	if simdActive && n8 > 0 {
		var out [4]int32
		for ; r+4 <= rows; r += 4 {
			dot4I8SIMD(&factors[r*k], k, &u[0], n8, &out)
			d0, d1, d2, d3 := out[0], out[1], out[2], out[3]
			if n8 < k {
				r0 := factors[r*k:][:k]
				r1 := factors[(r+1)*k:][:k]
				r2 := factors[(r+2)*k:][:k]
				r3 := factors[(r+3)*k:][:k]
				for i := n8; i < k; i++ {
					ua := int32(u[i])
					d0 += ua * int32(r0[i])
					d1 += ua * int32(r1[i])
					d2 += ua * int32(r2[i])
					d3 += ua * int32(r3[i])
				}
			}
			dst[r] = combineI8(d0, scale[r], offset[r], bias[r], qscale, sumQ)
			dst[r+1] = combineI8(d1, scale[r+1], offset[r+1], bias[r+1], qscale, sumQ)
			dst[r+2] = combineI8(d2, scale[r+2], offset[r+2], bias[r+2], qscale, sumQ)
			dst[r+3] = combineI8(d3, scale[r+3], offset[r+3], bias[r+3], qscale, sumQ)
		}
		for ; r < rows; r++ {
			dst[r] = DotBiasI8(u, factors[r*k:(r+1)*k], scale[r], offset[r], bias[r], qscale, sumQ)
		}
		return
	}
	for ; r+4 <= rows; r += 4 {
		r0 := factors[r*k:][:len(u)]
		r1 := factors[(r+1)*k:][:len(u)]
		r2 := factors[(r+2)*k:][:len(u)]
		r3 := factors[(r+3)*k:][:len(u)]
		var d0, d1, d2, d3 int32
		i := 0
		for ; i+2 <= len(u); i += 2 {
			ua, ub := int32(u[i]), int32(u[i+1])
			d0 += ua*int32(r0[i]) + ub*int32(r0[i+1])
			d1 += ua*int32(r1[i]) + ub*int32(r1[i+1])
			d2 += ua*int32(r2[i]) + ub*int32(r2[i+1])
			d3 += ua*int32(r3[i]) + ub*int32(r3[i+1])
		}
		if i < len(u) {
			ua := int32(u[i])
			d0 += ua * int32(r0[i])
			d1 += ua * int32(r1[i])
			d2 += ua * int32(r2[i])
			d3 += ua * int32(r3[i])
		}
		dst[r] = combineI8(d0, scale[r], offset[r], bias[r], qscale, sumQ)
		dst[r+1] = combineI8(d1, scale[r+1], offset[r+1], bias[r+1], qscale, sumQ)
		dst[r+2] = combineI8(d2, scale[r+2], offset[r+2], bias[r+2], qscale, sumQ)
		dst[r+3] = combineI8(d3, scale[r+3], offset[r+3], bias[r+3], qscale, sumQ)
	}
	for ; r < rows; r++ {
		dst[r] = DotBiasI8(u, factors[r*k:(r+1)*k], scale[r], offset[r], bias[r], qscale, sumQ)
	}
}

// combineI8 is the shared float64 tail of every int8 kernel — the same
// single-rounded statement sequence as DotBiasI8's.
func combineI8(d int32, scale, offset, bias, qscale, sumQ float64) float64 {
	return combineI8F(float64(d), scale, offset, bias, qscale, sumQ)
}

// combineI8F is combineI8 for a dot that was accumulated in float64. The
// conversion float64(int32) is exact, so routing both kernels through the
// same statement sequence keeps every score bitwise identical regardless
// of which representation carried the (always exact) integer dot.
func combineI8F(d, scale, offset, bias, qscale, sumQ float64) float64 {
	// explicit intermediates force one rounding per step — see DotBiasI8
	m := qscale * scale
	a := m * d
	c := offset * sumQ
	s := a + c
	return s + bias
}

// widenK and widenGroup bound the stack buffers of the widened multi-query
// fast path: factor dimensionalities up to widenK and query groups up to
// widenGroup go through matVecBiasI8MultiWidened; anything larger falls
// back to the per-query integer loop, which produces the identical scores.
// The widened path serves only the generic dispatch arm — when the SIMD
// kernels are active the assembly blocks process the int8 codes directly
// and are strictly faster than widening them to float64 first.
const (
	widenK     = 256
	widenGroup = 8
)

// MatVecBiasI8Multi is the cache-blocked multi-query sweep: each 4-row
// block of the slab is scored against every query of the group before the
// sweep advances, so a group of B queries reads the slab bytes once
// instead of B times. dsts[qi][r] receives query qi's score of row r. The
// integer dots are exact and the combine replicates DotBiasI8, so every
// score is bitwise identical to the single-query kernels'. It panics on
// any shape mismatch, including a query group larger than the dst group.
func MatVecBiasI8Multi(factors []int8, k int, scale, offset, bias []float64, us [][]int8, qscales, sumQs []float64, dsts [][]float64) {
	rows := len(bias)
	if len(factors) != rows*k {
		panicSlab("MatVecBiasI8Multi", len(factors), rows, k)
	}
	if len(scale) != rows || len(offset) != rows {
		panic(fmt.Sprintf("vecmath: MatVecBiasI8Multi param lengths %d/%d != rows %d", len(scale), len(offset), rows))
	}
	if len(us) != len(qscales) || len(us) != len(sumQs) || len(us) > len(dsts) {
		panic(fmt.Sprintf("vecmath: MatVecBiasI8Multi group lengths %d/%d/%d/%d mismatch", len(us), len(qscales), len(sumQs), len(dsts)))
	}
	for qi, u := range us {
		if len(u) != k {
			panic(fmt.Sprintf("vecmath: MatVecBiasI8Multi query %d length %d != k %d", qi, len(u), k))
		}
	}
	n8 := k &^ 7
	r := 0
	if simdActive && n8 > 0 {
		var out [4]int32
		for ; r+4 <= rows; r += 4 {
			for qi, u := range us {
				dot4I8SIMD(&factors[r*k], k, &u[0], n8, &out)
				d0, d1, d2, d3 := out[0], out[1], out[2], out[3]
				if n8 < k {
					r0 := factors[r*k:][:k]
					r1 := factors[(r+1)*k:][:k]
					r2 := factors[(r+2)*k:][:k]
					r3 := factors[(r+3)*k:][:k]
					for i := n8; i < k; i++ {
						ua := int32(u[i])
						d0 += ua * int32(r0[i])
						d1 += ua * int32(r1[i])
						d2 += ua * int32(r2[i])
						d3 += ua * int32(r3[i])
					}
				}
				dst := dsts[qi]
				dst[r] = combineI8(d0, scale[r], offset[r], bias[r], qscales[qi], sumQs[qi])
				dst[r+1] = combineI8(d1, scale[r+1], offset[r+1], bias[r+1], qscales[qi], sumQs[qi])
				dst[r+2] = combineI8(d2, scale[r+2], offset[r+2], bias[r+2], qscales[qi], sumQs[qi])
				dst[r+3] = combineI8(d3, scale[r+3], offset[r+3], bias[r+3], qscales[qi], sumQs[qi])
			}
		}
		for ; r < rows; r++ {
			row := factors[r*k : (r+1)*k]
			for qi, u := range us {
				dsts[qi][r] = DotBiasI8(u, row, scale[r], offset[r], bias[r], qscales[qi], sumQs[qi])
			}
		}
		return
	}
	if k <= widenK && len(us) <= widenGroup {
		matVecBiasI8MultiWidened(factors, k, scale, offset, bias, us, qscales, sumQs, dsts)
		return
	}
	for ; r+4 <= rows; r += 4 {
		for qi, u := range us {
			r0 := factors[r*k:][:len(u)]
			r1 := factors[(r+1)*k:][:len(u)]
			r2 := factors[(r+2)*k:][:len(u)]
			r3 := factors[(r+3)*k:][:len(u)]
			var d0, d1, d2, d3 int32
			i := 0
			for ; i+2 <= len(u); i += 2 {
				ua, ub := int32(u[i]), int32(u[i+1])
				d0 += ua*int32(r0[i]) + ub*int32(r0[i+1])
				d1 += ua*int32(r1[i]) + ub*int32(r1[i+1])
				d2 += ua*int32(r2[i]) + ub*int32(r2[i+1])
				d3 += ua*int32(r3[i]) + ub*int32(r3[i+1])
			}
			if i < len(u) {
				ua := int32(u[i])
				d0 += ua * int32(r0[i])
				d1 += ua * int32(r1[i])
				d2 += ua * int32(r2[i])
				d3 += ua * int32(r3[i])
			}
			dst := dsts[qi]
			dst[r] = combineI8(d0, scale[r], offset[r], bias[r], qscales[qi], sumQs[qi])
			dst[r+1] = combineI8(d1, scale[r+1], offset[r+1], bias[r+1], qscales[qi], sumQs[qi])
			dst[r+2] = combineI8(d2, scale[r+2], offset[r+2], bias[r+2], qscales[qi], sumQs[qi])
			dst[r+3] = combineI8(d3, scale[r+3], offset[r+3], bias[r+3], qscales[qi], sumQs[qi])
		}
	}
	for ; r < rows; r++ {
		row := factors[r*k : (r+1)*k]
		for qi, u := range us {
			dsts[qi][r] = DotBiasI8(u, row, scale[r], offset[r], bias[r], qscales[qi], sumQs[qi])
		}
	}
}

// matVecBiasI8MultiWidened is the fast path of MatVecBiasI8Multi. The
// int8 codes of each 4-row block are widened to float64 once and reused
// by every query of the group, so the widen-and-load work a per-query
// sweep pays on every slab pass is amortized across the group — this,
// beyond the slab-byte reuse, is where the blocked kernel's speedup
// comes from. The arithmetic stays exact: every product is an integer
// ≤ 127² and every partial sum an integer below MaxDotLenI8·127² < 2⁵³,
// so float64 addition never rounds, the accumulated dot equals the int32
// dot bit for bit, and the combineI8F tail reproduces DotBiasI8's
// statement sequence exactly.
func matVecBiasI8MultiWidened(factors []int8, k int, scale, offset, bias []float64, us [][]int8, qscales, sumQs []float64, dsts [][]float64) {
	rows := len(bias)
	var uw [widenGroup][widenK]float64
	for qi, u := range us {
		for j, v := range u {
			uw[qi][j] = float64(v)
		}
	}
	var w0, w1, w2, w3 [widenK]float64
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := factors[r*k:][:k]
		r1 := factors[(r+1)*k:][:k]
		r2 := factors[(r+2)*k:][:k]
		r3 := factors[(r+3)*k:][:k]
		for j := 0; j < k; j++ {
			w0[j] = float64(r0[j])
			w1[j] = float64(r1[j])
			w2[j] = float64(r2[j])
			w3[j] = float64(r3[j])
		}
		// query pairs: the four row loads per lane are shared by both
		// queries, halving the load traffic per multiply. Reassociating
		// the sums is free — every partial sum is an exact integer below
		// 2⁵³, so any accumulation order produces the same bits.
		qi := 0
		for ; qi+2 <= len(us); qi += 2 {
			u0, u1 := uw[qi][:k], uw[qi+1][:k]
			var a00, a01, a02, a03, a10, a11, a12, a13 float64
			for i := 0; i < k; i++ {
				f0, f1, f2, f3 := w0[i], w1[i], w2[i], w3[i]
				x0, x1 := u0[i], u1[i]
				a00 += x0 * f0
				a01 += x0 * f1
				a02 += x0 * f2
				a03 += x0 * f3
				a10 += x1 * f0
				a11 += x1 * f1
				a12 += x1 * f2
				a13 += x1 * f3
			}
			d0, d1 := dsts[qi], dsts[qi+1]
			qs0, sq0 := qscales[qi], sumQs[qi]
			qs1, sq1 := qscales[qi+1], sumQs[qi+1]
			d0[r] = combineI8F(a00, scale[r], offset[r], bias[r], qs0, sq0)
			d0[r+1] = combineI8F(a01, scale[r+1], offset[r+1], bias[r+1], qs0, sq0)
			d0[r+2] = combineI8F(a02, scale[r+2], offset[r+2], bias[r+2], qs0, sq0)
			d0[r+3] = combineI8F(a03, scale[r+3], offset[r+3], bias[r+3], qs0, sq0)
			d1[r] = combineI8F(a10, scale[r], offset[r], bias[r], qs1, sq1)
			d1[r+1] = combineI8F(a11, scale[r+1], offset[r+1], bias[r+1], qs1, sq1)
			d1[r+2] = combineI8F(a12, scale[r+2], offset[r+2], bias[r+2], qs1, sq1)
			d1[r+3] = combineI8F(a13, scale[r+3], offset[r+3], bias[r+3], qs1, sq1)
		}
		if qi < len(us) {
			u := uw[qi][:k]
			var a0, a1, a2, a3, b0, b1, b2, b3 float64
			i := 0
			for ; i+2 <= k; i += 2 {
				x, y := u[i], u[i+1]
				a0 += x * w0[i]
				b0 += y * w0[i+1]
				a1 += x * w1[i]
				b1 += y * w1[i+1]
				a2 += x * w2[i]
				b2 += y * w2[i+1]
				a3 += x * w3[i]
				b3 += y * w3[i+1]
			}
			if i < k {
				x := u[i]
				a0 += x * w0[i]
				a1 += x * w1[i]
				a2 += x * w2[i]
				a3 += x * w3[i]
			}
			dst := dsts[qi]
			qs, sq := qscales[qi], sumQs[qi]
			dst[r] = combineI8F(a0+b0, scale[r], offset[r], bias[r], qs, sq)
			dst[r+1] = combineI8F(a1+b1, scale[r+1], offset[r+1], bias[r+1], qs, sq)
			dst[r+2] = combineI8F(a2+b2, scale[r+2], offset[r+2], bias[r+2], qs, sq)
			dst[r+3] = combineI8F(a3+b3, scale[r+3], offset[r+3], bias[r+3], qs, sq)
		}
	}
	for ; r < rows; r++ {
		row := factors[r*k : (r+1)*k]
		for qi, u := range us {
			dsts[qi][r] = DotBiasI8(u, row, scale[r], offset[r], bias[r], qscales[qi], sumQs[qi])
		}
	}
}

// MatrixI8 is a dense compact row-major int8 matrix paired with nothing:
// the per-row code parameters live beside it in the scoring index. Like
// Matrix32 it carries no padding — slabs are immutable after construction
// and consumed by streaming sweeps.
type MatrixI8 struct {
	rows, cols int
	data       []int8
}

// NewMatrixI8 allocates a rows x cols int8 matrix of zeros.
func NewMatrixI8(rows, cols int) *MatrixI8 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrixI8 negative dimension %dx%d", rows, cols))
	}
	return &MatrixI8{rows: rows, cols: cols, data: make([]int8, rows*cols)}
}

// MatrixI8FromData wraps an externally owned compact row-major slice as a
// rows x cols matrix view without copying (the mmap'd-slab counterpart of
// NewMatrixI8). It panics if the slice length is not rows*cols.
func MatrixI8FromData(rows, cols int, data []int8) *MatrixI8 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: MatrixI8FromData negative dimension %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vecmath: MatrixI8FromData length %d, want %d (%dx%d)", len(data), rows*cols, rows, cols))
	}
	return &MatrixI8{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *MatrixI8) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *MatrixI8) Cols() int { return m.cols }

// Row returns row i as a capacity-clipped slice view.
func (m *MatrixI8) Row(i int) []int8 {
	start := i * m.cols
	return m.data[start : start+m.cols : start+m.cols]
}

// Data returns the flat row-major backing slice.
func (m *MatrixI8) Data() []int8 { return m.data }

// QuantizeFrom encodes a compact row-major float64 slab into the matrix
// row by row, writing each row's code parameters into scale and offset.
// It returns the slab-wide aggregates the certified error bound needs:
// the largest measured per-row reconstruction error, the largest scale,
// and the largest |offset|. It panics if src is not Rows*Cols or the
// parameter slices are not Rows long.
func (m *MatrixI8) QuantizeFrom(src []float64, scale, offset []float64) (maxErr, maxScale, maxAbsOffset float64) {
	if len(src) != m.rows*m.cols {
		panic(fmt.Sprintf("vecmath: MatrixI8.QuantizeFrom length %d, want %d (%dx%d)", len(src), m.rows*m.cols, m.rows, m.cols))
	}
	if len(scale) != m.rows || len(offset) != m.rows {
		panic(fmt.Sprintf("vecmath: MatrixI8.QuantizeFrom param lengths %d/%d, want %d rows", len(scale), len(offset), m.rows))
	}
	for r := 0; r < m.rows; r++ {
		s, o, e := QuantizeRow(m.Row(r), src[r*m.cols:(r+1)*m.cols])
		scale[r], offset[r] = s, o
		if e > maxErr {
			maxErr = e
		}
		if s > maxScale {
			maxScale = s
		}
		if ao := math.Abs(o); ao > maxAbsOffset {
			maxAbsOffset = ao
		}
	}
	return maxErr, maxScale, maxAbsOffset
}
