package vecmath

import (
	"math"
	"testing"
)

func TestDotBiasMatchesDotPlusBias(t *testing.T) {
	rng := NewRNG(7)
	a := make([]float64, 13)
	b := make([]float64, 13)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	want := Dot(a, b) + 0.25
	if got := DotBias(a, b, 0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DotBias = %v, want %v", got, want)
	}
	if got := DotBias(nil, nil, 1.5); got != 1.5 {
		t.Fatalf("empty DotBias = %v, want bias", got)
	}
}

func TestMatVecBiasMatchesRowDots(t *testing.T) {
	rng := NewRNG(9)
	// cover remainders 0..3 of the 4-row blocking plus tiny slabs
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 33} {
		for _, k := range []int{1, 3, 8} {
			factors := make([]float64, rows*k)
			bias := make([]float64, rows)
			q := make([]float64, k)
			for i := range factors {
				factors[i] = rng.NormFloat64()
			}
			for i := range bias {
				bias[i] = rng.NormFloat64()
			}
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			dst := make([]float64, rows)
			MatVecBias(factors, k, bias, q, dst)
			for r := 0; r < rows; r++ {
				want := Dot(q, factors[r*k:(r+1)*k]) + bias[r]
				if math.Abs(dst[r]-want) > 1e-12 {
					t.Fatalf("rows=%d k=%d row %d: got %v want %v", rows, k, r, dst[r], want)
				}
			}
		}
	}
}

func TestMatVecBiasPanicsOnMismatch(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("slab", func() { MatVecBias(make([]float64, 5), 2, make([]float64, 3), make([]float64, 2), make([]float64, 3)) })
	assertPanics("bias", func() { MatVecBias(make([]float64, 6), 2, make([]float64, 2), make([]float64, 2), make([]float64, 3)) })
	assertPanics("query", func() { MatVecBias(make([]float64, 6), 2, make([]float64, 3), make([]float64, 3), make([]float64, 3)) })
}

func TestTopKStreamMatchesTopK(t *testing.T) {
	rng := NewRNG(21)
	items := make([]Scored, 500)
	for i := range items {
		// coarse quantization forces plenty of score ties
		items[i] = Scored{ID: i, Score: math.Floor(rng.NormFloat64() * 4)}
	}
	st := NewTopKStream(0)
	for _, k := range []int{1, 3, 17, 499, 500, 600} {
		want := TopK(items, k)
		st.Reset(k)
		for _, it := range items {
			st.Push(it.ID, it.Score)
		}
		got := st.Ranked()
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d vs %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: stream %v vs TopK %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestTopKStreamThreshold(t *testing.T) {
	st := NewTopKStream(2)
	if _, full := st.Threshold(); full {
		t.Fatal("empty stream reported full")
	}
	st.Push(0, 1)
	st.Push(1, 5)
	th, full := st.Threshold()
	if !full || th != 1 {
		t.Fatalf("Threshold = %v,%v want 1,true", th, full)
	}
	st.Push(2, 3)
	if th, _ := st.Threshold(); th != 3 {
		t.Fatalf("Threshold after displacement = %v, want 3", th)
	}
}

func TestTopKStreamZeroK(t *testing.T) {
	st := NewTopKStream(0)
	if th, full := st.Threshold(); !full || !math.IsInf(th, 1) {
		t.Fatalf("k=0 Threshold = %v,%v want +Inf,true", th, full)
	}
	st.Push(1, 2)
	if st.Len() != 0 || len(st.Ranked()) != 0 {
		t.Fatal("k=0 stream must retain nothing")
	}
}
