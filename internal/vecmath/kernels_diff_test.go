package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// Differential suite for the kernel dispatch: whatever arm init selected
// (AVX2, NEON or generic), every public kernel must be bitwise identical
// to the pure-Go reference on every shape — all lengths through the
// vector width and well past it, odd tails, unaligned sub-slices, and
// hostile values (±127 saturated codes, subnormals, infinities, zero
// crossings). Run it with SIMD on, with TFREC_NOSIMD=1, and under
// -tags purego; all three must pass, the first proving the asm, the
// other two proving the escape hatches.

// diffLengths covers every length through several vector widths (0..67
// exercises all mod-8 and mod-16 tails), then jumps through block
// boundaries up to 4096.
func diffLengths() []int {
	var ns []int
	for n := 0; n <= 67; n++ {
		ns = append(ns, n)
	}
	for _, n := range []int{96, 100, 127, 128, 129, 255, 256, 257, 1000, 1024, 2048, 4095, 4096} {
		ns = append(ns, n)
	}
	return ns
}

// fillI8 writes adversarial int8 patterns: dense random codes with
// frequent ±127 saturation so lane products hit the extremes VPMADDWD /
// SMULL must not saturate on.
func fillI8(rng *rand.Rand, v []int8) {
	for i := range v {
		switch rng.Intn(6) {
		case 0:
			v[i] = 127
		case 1:
			v[i] = -127
		default:
			v[i] = int8(rng.Intn(255) - 127)
		}
	}
}

// fillF32 writes adversarial float32 values: mixed magnitudes, exact
// negations, subnormals, zeros and the occasional huge value, so lane
// sums cancel, round and overflow in ways that would expose any
// accumulation-order drift between the dispatch arms.
func fillF32(rng *rand.Rand, v []float32) {
	for i := range v {
		switch rng.Intn(10) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = math.Float32frombits(rng.Uint32() & 0x007fffff) // subnormal
		case 2:
			v[i] = float32(math.Inf(1)) * float32(rng.Intn(2)*2-1) / 4 // ±Inf/4 = ±Inf
		case 3:
			v[i] = 3.4e38 * float32(rng.Intn(2)*2-1)
		default:
			v[i] = (rng.Float32()*2 - 1) * float32(math.Pow(2, float64(rng.Intn(40)-20)))
		}
	}
}

func TestDotI8MatchesRef(t *testing.T) {
	t.Logf("dispatch: %s (simd=%v)", KernelsID(), SIMDEnabled())
	rng := rand.New(rand.NewSource(11))
	for _, n := range diffLengths() {
		// +3 scratch so unaligned sub-slices stay in bounds
		a := make([]int8, n+3)
		b := make([]int8, n+3)
		fillI8(rng, a)
		fillI8(rng, b)
		for _, off := range []int{0, 1, 2, 3} {
			x, y := a[off:off+n], b[off:off+n]
			if got, want := DotI8(x, y), DotI8Ref(x, y); got != want {
				t.Fatalf("n=%d off=%d: DotI8=%d ref=%d", n, off, got, want)
			}
		}
	}
}

func TestDotBias32MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range diffLengths() {
		a := make([]float32, n+3)
		b := make([]float32, n+3)
		fillF32(rng, a)
		fillF32(rng, b)
		for _, off := range []int{0, 1, 2, 3} {
			x, y := a[off:off+n], b[off:off+n]
			for _, bias := range []float32{0, 1.5, -0.25} {
				got := DotBias32(x, y, bias)
				want := DotBias32Ref(x, y, bias)
				if math.Float32bits(got) != math.Float32bits(want) {
					// NaN payloads may legitimately differ between scalar
					// and vector units; NaN-vs-NaN is still agreement
					if !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
						t.Fatalf("n=%d off=%d bias=%g: DotBias32=%x ref=%x", n, off, bias,
							math.Float32bits(got), math.Float32bits(want))
					}
				}
			}
		}
	}
}

// TestMatVecBias32MatchesRowwise pins the blocked f32 sweep (and its
// shared-query SIMD blocks) to the row-at-a-time reference, bitwise,
// across row counts that exercise every 4-block tail and k values that
// exercise every 8-lane tail.
func TestMatVecBias32MatchesRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		for _, k := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 32, 63, 64, 100} {
			factors := make([]float32, rows*k)
			bias := make([]float32, rows)
			q := make([]float32, k)
			fillF32(rng, factors)
			fillF32(rng, bias)
			fillF32(rng, q)
			dst := make([]float32, rows)
			MatVecBias32(factors, k, bias, q, dst)
			for r := 0; r < rows; r++ {
				want := DotBias32Ref(q, factors[r*k:(r+1)*k], bias[r])
				if math.Float32bits(dst[r]) != math.Float32bits(want) {
					if math.IsNaN(float64(dst[r])) && math.IsNaN(float64(want)) {
						continue
					}
					t.Fatalf("rows=%d k=%d r=%d: blocked=%x rowwise=%x", rows, k, r,
						math.Float32bits(dst[r]), math.Float32bits(want))
				}
			}
		}
	}
}

// TestMatVecBias32MultiMatchesSingle pins the multi-query f32 sweep to
// the single-query kernel, bitwise, across group sizes.
func TestMatVecBias32MultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, rows := range []int{0, 3, 4, 9, 17} {
		for _, k := range []int{1, 7, 8, 16, 33, 64} {
			for _, group := range []int{1, 2, 3, 5, 8, 9} {
				factors := make([]float32, rows*k)
				bias := make([]float32, rows)
				fillF32(rng, factors)
				fillF32(rng, bias)
				qs := make([][]float32, group)
				dsts := make([][]float32, group)
				for qi := range qs {
					qs[qi] = make([]float32, k)
					fillF32(rng, qs[qi])
					dsts[qi] = make([]float32, rows)
				}
				MatVecBias32Multi(factors, k, bias, qs, dsts)
				single := make([]float32, rows)
				for qi := range qs {
					MatVecBias32(factors, k, bias, qs[qi], single)
					for r := 0; r < rows; r++ {
						if math.Float32bits(dsts[qi][r]) != math.Float32bits(single[r]) {
							if math.IsNaN(float64(dsts[qi][r])) && math.IsNaN(float64(single[r])) {
								continue
							}
							t.Fatalf("rows=%d k=%d group=%d qi=%d r=%d: multi=%x single=%x",
								rows, k, group, qi, r,
								math.Float32bits(dsts[qi][r]), math.Float32bits(single[r]))
						}
					}
				}
			}
		}
	}
}

// TestMatVecBiasI8MatchesRowwise pins the blocked int8 sweep to
// DotBiasI8 built on the pure-Go reference dot, bitwise in float64.
func TestMatVecBiasI8MatchesRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, rows := range []int{0, 1, 3, 4, 5, 8, 9, 33} {
		for _, k := range []int{0, 1, 3, 7, 8, 9, 16, 17, 63, 64, 100, 256} {
			factors := make([]int8, rows*k)
			fillI8(rng, factors)
			scale := make([]float64, rows)
			offset := make([]float64, rows)
			bias := make([]float64, rows)
			for r := range scale {
				scale[r] = rng.Float64()
				offset[r] = rng.NormFloat64()
				bias[r] = rng.NormFloat64()
			}
			u := make([]int8, k)
			fillI8(rng, u)
			qscale, sumQ := rng.Float64(), rng.NormFloat64()
			dst := make([]float64, rows)
			MatVecBiasI8(factors, k, scale, offset, bias, u, qscale, sumQ, dst)
			for r := 0; r < rows; r++ {
				d := dotI8Ref(u, factors[r*k:(r+1)*k])
				want := combineI8(d, scale[r], offset[r], bias[r], qscale, sumQ)
				if math.Float64bits(dst[r]) != math.Float64bits(want) {
					t.Fatalf("rows=%d k=%d r=%d: blocked=%x rowwise=%x", rows, k, r,
						math.Float64bits(dst[r]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestMatVecBiasI8MultiMatchesSingle pins the multi-query int8 sweep
// (SIMD blocks, the widened generic fast path, and the fallback loop) to
// the single-query kernel, bitwise, straddling the widenK/widenGroup
// fast-path boundaries.
func TestMatVecBiasI8MultiMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, rows := range []int{0, 3, 4, 9, 17} {
		for _, k := range []int{1, 7, 8, 16, 64, widenK, widenK + 1} {
			for _, group := range []int{1, 3, widenGroup, widenGroup + 1} {
				factors := make([]int8, rows*k)
				fillI8(rng, factors)
				scale := make([]float64, rows)
				offset := make([]float64, rows)
				bias := make([]float64, rows)
				for r := range scale {
					scale[r] = rng.Float64()
					offset[r] = rng.NormFloat64()
					bias[r] = rng.NormFloat64()
				}
				us := make([][]int8, group)
				qscales := make([]float64, group)
				sumQs := make([]float64, group)
				dsts := make([][]float64, group)
				for qi := range us {
					us[qi] = make([]int8, k)
					fillI8(rng, us[qi])
					qscales[qi] = rng.Float64()
					sumQs[qi] = rng.NormFloat64()
					dsts[qi] = make([]float64, rows)
				}
				MatVecBiasI8Multi(factors, k, scale, offset, bias, us, qscales, sumQs, dsts)
				single := make([]float64, rows)
				for qi := range us {
					MatVecBiasI8(factors, k, scale, offset, bias, us[qi], qscales[qi], sumQs[qi], single)
					for r := 0; r < rows; r++ {
						if math.Float64bits(dsts[qi][r]) != math.Float64bits(single[r]) {
							t.Fatalf("rows=%d k=%d group=%d qi=%d r=%d: multi=%x single=%x",
								rows, k, group, qi, r,
								math.Float64bits(dsts[qi][r]), math.Float64bits(single[r]))
						}
					}
				}
			}
		}
	}
}

// TestDotI8WraparoundMatchesRef drives the accumulator past int32 range:
// past MaxDotLenI8 both arms must wrap mod 2³² identically (the kernels
// are only certified below the bound, but dispatch must never be the
// thing that changes a result).
func TestDotI8WraparoundMatchesRef(t *testing.T) {
	n := MaxDotLenI8 + 9
	a := make([]int8, n)
	b := make([]int8, n)
	for i := range a {
		a[i] = 127
		b[i] = 127
	}
	if got, want := DotI8(a, b), DotI8Ref(a, b); got != want {
		t.Fatalf("wraparound: DotI8=%d ref=%d", got, want)
	}
}

// TestKernelWrappersZeroAlloc pins the dispatch wrappers to zero heap
// allocations per call — the go:noescape declarations must keep the
// stack-allocated accumulator arrays off the heap.
func TestKernelWrappersZeroAlloc(t *testing.T) {
	const rows, k = 12, 48
	fi8 := make([]int8, rows*k)
	f32 := make([]float32, rows*k)
	scale := make([]float64, rows)
	offset := make([]float64, rows)
	bias := make([]float64, rows)
	bias32 := make([]float32, rows)
	u := make([]int8, k)
	q := make([]float32, k)
	dst := make([]float64, rows)
	dst32 := make([]float32, rows)
	us := [][]int8{u, u}
	qs := [][]float32{q, q}
	dsts := [][]float64{dst, make([]float64, rows)}
	dsts32 := [][]float32{dst32, make([]float32, rows)}
	for name, fn := range map[string]func(){
		"DotI8":        func() { DotI8(u, fi8[:k]) },
		"DotBias32":    func() { DotBias32(q, f32[:k], 1) },
		"MatVecBiasI8": func() { MatVecBiasI8(fi8, k, scale, offset, bias, u, 1, 0, dst) },
		"MatVecBias32": func() { MatVecBias32(f32, k, bias32, q, dst32) },
		"MatVecBiasI8Multi": func() {
			MatVecBiasI8Multi(fi8, k, scale, offset, bias, us, []float64{1, 1}, []float64{0, 0}, dsts)
		},
		"MatVecBias32Multi": func() { MatVecBias32Multi(f32, k, bias32, qs, dsts32) },
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %v per call", name, allocs)
		}
	}
}

// FuzzDotI8Diff cross-checks the dispatched int8 dot against the
// reference on fuzz-chosen bytes and split points.
func FuzzDotI8Diff(f *testing.F) {
	f.Add([]byte{1, 255, 127, 128, 0, 3, 9, 200}, []byte{127, 127, 1, 2, 250, 6, 7, 8})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		n := len(ab)
		if len(bb) < n {
			n = len(bb)
		}
		a := make([]int8, n)
		b := make([]int8, n)
		for i := 0; i < n; i++ {
			a[i] = int8(ab[i])
			b[i] = int8(bb[i])
		}
		if got, want := DotI8(a, b), DotI8Ref(a, b); got != want {
			t.Fatalf("n=%d: DotI8=%d ref=%d", n, got, want)
		}
	})
}

// FuzzDotBias32Diff cross-checks the dispatched f32 dot against the
// reference on fuzz-chosen bit patterns, including NaN/Inf/subnormal
// encodings the corpus mutates into.
func FuzzDotBias32Diff(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 128, 191, 1, 0, 0, 0}, []byte{255, 255, 127, 127, 0, 0, 128, 255}, float32(0.5))
	f.Fuzz(func(t *testing.T, ab, bb []byte, bias float32) {
		n := len(ab) / 4
		if m := len(bb) / 4; m < n {
			n = m
		}
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = math.Float32frombits(uint32(ab[4*i]) | uint32(ab[4*i+1])<<8 | uint32(ab[4*i+2])<<16 | uint32(ab[4*i+3])<<24)
			b[i] = math.Float32frombits(uint32(bb[4*i]) | uint32(bb[4*i+1])<<8 | uint32(bb[4*i+2])<<16 | uint32(bb[4*i+3])<<24)
		}
		got := DotBias32(a, b, bias)
		want := DotBias32Ref(a, b, bias)
		if math.Float32bits(got) != math.Float32bits(want) &&
			!(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
			t.Fatalf("n=%d: DotBias32=%x ref=%x", n, math.Float32bits(got), math.Float32bits(want))
		}
	})
}
