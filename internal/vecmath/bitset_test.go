package vecmath

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset: len %d count %d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if b.Count() != 4 {
		t.Fatalf("count %d after 4 sets", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d lost", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("ghost bit set")
	}
	b.Unset(63)
	if b.Get(63) || b.Count() != 3 {
		t.Fatal("unset failed")
	}
	b.Fill()
	if b.Count() != 130 {
		t.Fatalf("fill count %d, want 130", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("clear failed")
	}
}

// Resize must clear recycled words so a smaller re-arming never leaks
// bits from a previous use, and Fill must not set ghost tail bits that
// Count would then report.
func TestBitsetResizeAndTail(t *testing.T) {
	b := NewBitset(200)
	b.Fill()
	b.Resize(70)
	if b.Count() != 0 {
		t.Fatalf("resize leaked %d bits", b.Count())
	}
	b.Fill()
	if b.Count() != 70 {
		t.Fatalf("fill after resize counts %d, want 70", b.Count())
	}
	if !b.AllInRange(0, 70) || b.AnyInRange(70, 70) {
		t.Fatal("range views disagree with fill")
	}
}

// Property: the word-sliced range operations agree with the obvious
// bit-at-a-time reference for arbitrary (lo, hi) windows.
func TestQuickBitsetRangesMatchReference(t *testing.T) {
	f := func(nRaw, aRaw, bRaw, cRaw, dRaw uint8, fill bool) bool {
		n := 1 + int(nRaw)
		b := NewBitset(n)
		ref := make([]bool, n)
		if fill {
			b.Fill()
			for i := range ref {
				ref[i] = true
			}
		}
		clamp := func(x uint8) int { return int(x) % (n + 1) }
		lo, hi := clamp(aRaw), clamp(bRaw)
		b.SetRange(lo, hi)
		for i := lo; i < hi; i++ {
			ref[i] = true
		}
		lo, hi = clamp(cRaw), clamp(dRaw)
		b.UnsetRange(lo, hi)
		for i := lo; i < hi; i++ {
			ref[i] = false
		}
		count := 0
		for i, want := range ref {
			if b.Get(i) != want {
				return false
			}
			if want {
				count++
			}
		}
		if b.Count() != count {
			return false
		}
		// probe Any/All on a few windows against the reference
		for _, w := range [][2]int{{0, n}, {clamp(aRaw), clamp(dRaw)}, {clamp(cRaw), clamp(bRaw)}} {
			lo, hi := w[0], w[1]
			any, all := false, true
			for i := lo; i < hi; i++ {
				any = any || ref[i]
				all = all && ref[i]
			}
			if b.AnyInRange(lo, hi) != any || b.AllInRange(lo, hi) != all {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
