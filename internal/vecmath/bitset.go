package vecmath

import "math/bits"

// Bitset is a fixed-size bit vector over [0, Len()). Filtered inference
// uses one as the item-eligibility mask of a query plan: bit i set means
// item i may appear in the result. The representation keeps every bit at
// position >= Len() zero, so whole-word operations (Count, AnyInRange)
// never see ghost entries from a previous, larger arming.
//
// A Bitset is not safe for concurrent mutation, but concurrent readers
// are fine once it is built — the filtered sweep fans a compiled mask out
// to pool workers read-only.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-clear bitset over [0, n).
func NewBitset(n int) *Bitset {
	b := &Bitset{}
	b.Resize(n)
	return b
}

// Resize re-arms the bitset for n bits, all clear, growing the backing
// array only when n exceeds its capacity — the recycling hook the pooled
// filter compiler uses.
func (b *Bitset) Resize(n int) {
	w := (n + 63) / 64
	if w > cap(b.words) {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// Len returns the universe size the bitset was armed with.
func (b *Bitset) Len() int { return b.n }

// Fill sets every bit in [0, Len()).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clampTail()
}

// Clear unsets every bit.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// clampTail zeroes the ghost bits of the last word beyond Len().
func (b *Bitset) clampTail() {
	if tail := b.n & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << tail) - 1
	}
}

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (i & 63) }

// Unset clears bit i.
func (b *Bitset) Unset(i int) { b.words[i>>6] &^= 1 << (i & 63) }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// SetRange sets every bit in [lo, hi).
func (b *Bitset) SetRange(lo, hi int) {
	b.rangeOp(lo, hi, true)
}

// UnsetRange clears every bit in [lo, hi).
func (b *Bitset) UnsetRange(lo, hi int) {
	b.rangeOp(lo, hi, false)
}

func (b *Bitset) rangeOp(lo, hi int, set bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		m := loMask & hiMask
		if set {
			b.words[loW] |= m
		} else {
			b.words[loW] &^= m
		}
		return
	}
	if set {
		b.words[loW] |= loMask
		for w := loW + 1; w < hiW; w++ {
			b.words[w] = ^uint64(0)
		}
		b.words[hiW] |= hiMask
	} else {
		b.words[loW] &^= loMask
		for w := loW + 1; w < hiW; w++ {
			b.words[w] = 0
		}
		b.words[hiW] &^= hiMask
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountRange returns the number of set bits in [lo, hi). The filtered
// sweep uses the block's eligible count to pick between the dense blocked
// kernel and per-row gathers.
func (b *Bitset) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		return bits.OnesCount64(b.words[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(b.words[loW]&loMask) + bits.OnesCount64(b.words[hiW]&hiMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(b.words[w])
	}
	return n
}

// ForEachInRange calls visit for every set bit in [lo, hi), in ascending
// order — the visitation order a filtered sweep needs so its pushes match
// the dense sweep's tie-breaking exactly.
func (b *Bitset) ForEachInRange(lo, hi int, visit func(i int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return
	}
	loW, hiW := lo>>6, (hi-1)>>6
	for w := loW; w <= hiW; w++ {
		word := b.words[w]
		if w == loW {
			word &= ^uint64(0) << (lo & 63)
		}
		if w == hiW {
			word &= ^uint64(0) >> (63 - (hi-1)&63)
		}
		for word != 0 {
			visit(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// AnyInRange reports whether any bit in [lo, hi) is set. The filtered
// sweep uses it to skip whole score blocks whose items are all excluded
// without touching their factor rows.
func (b *Bitset) AnyInRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return false
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		return b.words[loW]&loMask&hiMask != 0
	}
	if b.words[loW]&loMask != 0 || b.words[hiW]&hiMask != 0 {
		return true
	}
	for w := loW + 1; w < hiW; w++ {
		if b.words[w] != 0 {
			return true
		}
	}
	return false
}

// AllInRange reports whether every bit in [lo, hi) is set. The filtered
// sweep uses it to take the branch-free fast path on fully eligible
// blocks. An empty range is vacuously all-set.
func (b *Bitset) AllInRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo >= hi {
		return true
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (lo & 63)
	hiMask := ^uint64(0) >> (63 - (hi-1)&63)
	if loW == hiW {
		m := loMask & hiMask
		return b.words[loW]&m == m
	}
	if b.words[loW]&loMask != loMask || b.words[hiW]&hiMask != hiMask {
		return false
	}
	for w := loW + 1; w < hiW; w++ {
		if b.words[w] != ^uint64(0) {
			return false
		}
	}
	return true
}
