package serve

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// admission is the load-shedding front of the HTTP layer: a concurrency
// limiter with a bounded wait queue. Up to maxInflight requests execute
// at once; up to maxQueue more may wait up to queueWait for a slot; and
// everything beyond that is rejected immediately. Saturation therefore
// degrades by shedding — cheap 429/503 responses with Retry-After — not
// by stacking goroutines until the sweep pool, the batcher and the
// kernel's accept queue all drown at once. Both shed paths are counted
// separately so /v1/stats distinguishes "the queue was full" (arrival
// rate beyond even the buffer) from "a slot never freed in time"
// (service time collapsed).
type admission struct {
	slots chan struct{} // one token per executing request
	queue chan struct{} // one token per waiting request
	wait  time.Duration

	inflight      atomic.Int64
	queued        atomic.Int64
	shedQueueFull atomic.Int64
	shedWait      atomic.Int64
	queueAborted  atomic.Int64
}

func newAdmission(maxInflight, maxQueue int, queueWait time.Duration) *admission {
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInflight),
		queue: make(chan struct{}, maxQueue),
		wait:  queueWait,
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// none is free. It returns a non-nil release func on admission; on shed
// it returns nil and the HTTP status to answer with: 429 when the wait
// queue itself is full (the client should back off), 503 when a slot did
// not free up within the queue wait or the caller's context ended first.
// Only genuine slot starvation — the wait timer or a deadline expiring —
// counts toward shed_wait_timeout; a client that hangs up while queued is
// tallied separately (queue_abandoned), so the "service time collapsed"
// signal is not inflated by client churn.
func (a *admission) acquire(ctx context.Context) (release func(), status int) {
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), 0
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.shedQueueFull.Add(1)
		return nil, http.StatusTooManyRequests
	}
	a.queued.Add(1)
	defer func() {
		a.queued.Add(-1)
		<-a.queue
	}()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), 0
	case <-timer.C:
		a.shedWait.Add(1)
		return nil, http.StatusServiceUnavailable
	case <-ctx.Done():
		if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
			// the request's budget expired while queued: the slot really
			// never freed in time
			a.shedWait.Add(1)
		} else {
			a.queueAborted.Add(1)
		}
		return nil, http.StatusServiceUnavailable
	}
}

func (a *admission) admitted() func() {
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}
}

// AdmissionStats is the admission section of /v1/stats.
type AdmissionStats struct {
	MaxInflight   int   `json:"max_inflight"`
	MaxQueue      int   `json:"max_queue"`
	QueueWaitMS   int64 `json:"queue_wait_ms"`
	Inflight      int64 `json:"inflight"`
	Queued        int64 `json:"queued"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedWait      int64 `json:"shed_wait_timeout"`
	QueueAborted  int64 `json:"queue_abandoned"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxInflight:   cap(a.slots),
		MaxQueue:      cap(a.queue),
		QueueWaitMS:   a.wait.Milliseconds(),
		Inflight:      a.inflight.Load(),
		Queued:        a.queued.Load(),
		ShedQueueFull: a.shedQueueFull.Load(),
		ShedWait:      a.shedWait.Load(),
		QueueAborted:  a.queueAborted.Load(),
	}
}
