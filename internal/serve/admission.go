package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Admission is the load-shedding front of an HTTP serving layer — the
// same limiter guards a single node's recommend endpoints and a
// scatter-gather router's fan-out: a concurrency
// limiter with a bounded wait queue. Up to maxInflight requests execute
// at once; up to maxQueue more may wait up to queueWait for a slot; and
// everything beyond that is rejected immediately. Saturation therefore
// degrades by shedding — cheap 429/503 responses with Retry-After — not
// by stacking goroutines until the sweep pool, the batcher and the
// kernel's accept queue all drown at once. Both shed paths are counted
// separately so /v1/stats distinguishes "the queue was full" (arrival
// rate beyond even the buffer) from "a slot never freed in time"
// (service time collapsed).
type Admission struct {
	slots chan struct{} // one token per executing request
	queue chan struct{} // one token per waiting request
	wait  time.Duration

	inflight      atomic.Int64
	queued        atomic.Int64
	shedQueueFull atomic.Int64
	shedWait      atomic.Int64
	queueAborted  atomic.Int64
}

func NewAdmission(maxInflight, maxQueue int, queueWait time.Duration) *Admission {
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots: make(chan struct{}, maxInflight),
		queue: make(chan struct{}, maxQueue),
		wait:  queueWait,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when
// none is free. It returns a non-nil release func on admission; on shed
// it returns nil and the typed error code to answer with:
// api.CodeQueueFull (429) when the wait queue itself is full (the client
// should back off), api.CodeOverloaded (503) when a slot did not free up
// within the queue wait or the caller's context ended first.
// Only genuine slot starvation — the wait timer or a deadline expiring —
// counts toward shed_wait_timeout; a client that hangs up while queued is
// tallied separately (queue_abandoned), so the "service time collapsed"
// signal is not inflated by client churn.
func (a *Admission) Acquire(ctx context.Context) (release func(), code api.Code) {
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), ""
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.shedQueueFull.Add(1)
		return nil, api.CodeQueueFull
	}
	a.queued.Add(1)
	defer func() {
		a.queued.Add(-1)
		<-a.queue
	}()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), ""
	case <-timer.C:
		a.shedWait.Add(1)
		return nil, api.CodeOverloaded
	case <-ctx.Done():
		if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
			// the request's budget expired while queued: the slot really
			// never freed in time
			a.shedWait.Add(1)
		} else {
			a.queueAborted.Add(1)
		}
		return nil, api.CodeOverloaded
	}
}

func (a *Admission) admitted() func() {
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}
}

// AdmissionStats is the admission section of /v1/stats (canonically
// api.AdmissionStats; aliased here for the serve-level consumers).
type AdmissionStats = api.AdmissionStats

// Stats reports the limiter's configuration and counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		MaxInflight:   cap(a.slots),
		MaxQueue:      cap(a.queue),
		QueueWaitMS:   a.wait.Milliseconds(),
		Inflight:      a.inflight.Load(),
		Queued:        a.queued.Load(),
		ShedQueueFull: a.shedQueueFull.Load(),
		ShedWait:      a.shedWait.Load(),
		QueueAborted:  a.queueAborted.Load(),
	}
}
