package serve

import (
	"container/list"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/vecmath"
)

// VersionedCache is a versioned LRU cache: one bounded map from
// canonicalized request keys to finished values, each entry stamped with
// the model epoch it was computed under. BumpEpoch (run by every hot
// swap) is one atomic add — it never takes the cache lock — and every
// entry stamped under an older epoch becomes unreachable at once: Get
// compares the entry's stamp against the epoch the caller pinned and
// treats a mismatch as a miss (deleting the entry lazily). Hot-swapping
// a model therefore invalidates the whole cache atomically without
// blocking readers or walking entries.
//
// Epoch/snapshot ordering is what makes a stale hit impossible. Writers
// pin the epoch BEFORE loading the snapshot (Server.pin) and the swap
// stores the new snapshot BEFORE bumping the epoch; so a request that
// pinned epoch e computed its result on a snapshot at least as new as
// e's. If a reload sneaks between a request's pin and its store, the
// fresh result is stamped with the older epoch and over-invalidated —
// the safe direction. A result computed on the old snapshot can never be
// stamped with the new epoch.
//
// The same machinery serves two layers: a single node caches rankings
// under its own swap counter (the clone hook keeps stored slices
// isolated from callers), and a scatter-gather router caches merged
// rankings under the MINIMUM epoch across its shard set — the min is the
// epoch the whole merged result is guaranteed current at, and any shard
// reload raises it, invalidating router entries by the same stamp
// comparison.
type VersionedCache[V any] struct {
	epoch atomic.Uint64

	// clone, when non-nil, copies a value on Put so cached state is
	// isolated from whatever buffer the caller reuses.
	clone func(V) V

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	stale     atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one cached value; val is read-only after insertion (hits
// share it, so nothing may mutate it).
type cacheEntry[V any] struct {
	key   string
	epoch uint64
	val   V
}

// NewVersionedCache builds a cache holding up to capacity entries. clone
// (may be nil) copies values on Put.
func NewVersionedCache[V any](capacity int, clone func(V) V) *VersionedCache[V] {
	return &VersionedCache[V]{
		clone:   clone,
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Epoch reads the current cache epoch — what Server.pin stamps requests
// with.
func (rc *VersionedCache[V]) Epoch() uint64 { return rc.epoch.Load() }

// BumpEpoch invalidates every cached entry with one atomic add.
func (rc *VersionedCache[V]) BumpEpoch() { rc.epoch.Add(1) }

// Get returns the value cached under key if it was stamped with the
// caller's pinned epoch. An entry from an older epoch is removed and
// reported as a (stale) miss.
func (rc *VersionedCache[V]) Get(epoch uint64, key string) (V, bool) {
	var zero V
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if !ok {
		rc.mu.Unlock()
		rc.misses.Add(1)
		return zero, false
	}
	ent := el.Value.(*cacheEntry[V])
	if ent.epoch != epoch {
		rc.ll.Remove(el)
		delete(rc.entries, key)
		rc.mu.Unlock()
		rc.stale.Add(1)
		rc.misses.Add(1)
		return zero, false
	}
	rc.ll.MoveToFront(el)
	// snapshot the value before unlocking: Put may overwrite ent.val
	// under the lock (two misses racing to fill one key), and a
	// post-unlock field read would tear against it. The value's contents
	// are safe either way — Put stores fresh clones it never mutates.
	val := ent.val
	rc.mu.Unlock()
	rc.hits.Add(1)
	return val, true
}

// Put stores v (cloned, when a clone hook is set) under key, stamped
// with the epoch the caller pinned before computing it, evicting from
// the LRU tail past capacity.
func (rc *VersionedCache[V]) Put(epoch uint64, key string, v V) {
	if rc.clone != nil {
		v = rc.clone(v)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[key]; ok {
		ent := el.Value.(*cacheEntry[V])
		ent.epoch, ent.val = epoch, v
		rc.ll.MoveToFront(el)
		return
	}
	rc.entries[key] = rc.ll.PushFront(&cacheEntry[V]{key: key, epoch: epoch, val: v})
	for rc.ll.Len() > rc.cap {
		back := rc.ll.Back()
		rc.ll.Remove(back)
		delete(rc.entries, back.Value.(*cacheEntry[V]).key)
		rc.evictions.Add(1)
	}
}

// CacheStats is the cache section of /v1/stats (canonically
// api.CacheStats; aliased here for the serve-level consumers).
type CacheStats = api.CacheStats

// Stats reports the cache's counters.
func (rc *VersionedCache[V]) Stats() CacheStats {
	rc.mu.Lock()
	size := rc.ll.Len()
	rc.mu.Unlock()
	return CacheStats{
		Capacity:  rc.cap,
		Size:      size,
		Epoch:     rc.epoch.Load(),
		Hits:      rc.hits.Load(),
		Misses:    rc.misses.Load(),
		Stale:     rc.stale.Load(),
		Evictions: rc.evictions.Load(),
	}
}

// resultCache is the server's ranking cache: rankings are cloned on
// insertion because the executor reuses result buffers across requests.
type resultCache = VersionedCache[[]vecmath.Scored]

func newResultCache(capacity int) *resultCache {
	return NewVersionedCache(capacity, slices.Clone[[]vecmath.Scored])
}

// cacheKey canonicalizes a request into its cache identity: the query
// subject (user + recent baskets, in order — basket order drives the
// Markov term) and every plan field that can change the returned page.
// Workers, Precision and Pruned are deliberately absent: the executor's
// rankings are byte-identical across worker counts, precisions and the
// branch-and-bound engine (the properties the plan-equivalence suites
// pin), so requests differing only in those knobs share one entry. Category lists are sorted copies — filters are
// set semantics, so permuted lists share an entry too.
func cacheKey(req *Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "u%d|k%d|o%d", req.User, req.K, req.Offset)
	for _, basket := range req.Recent {
		b.WriteString("|r")
		for _, it := range basket {
			fmt.Fprintf(&b, ",%d", it)
		}
	}
	if req.Cascade != nil {
		b.WriteString("|c")
		for _, f := range req.Cascade.KeepFrac {
			fmt.Fprintf(&b, ",%g", f)
		}
	}
	if req.MaxPerCategory > 0 {
		fmt.Fprintf(&b, "|d%d@%d", req.MaxPerCategory, req.CatDepth)
	}
	if req.ExcludePurchased {
		b.WriteString("|xp")
	}
	writeSortedIDs(&b, "ca", req.Categories)
	writeSortedIDs(&b, "cx", req.ExcludeCategories)
	return b.String()
}

func writeSortedIDs(b *strings.Builder, tag string, ids []int32) {
	if len(ids) == 0 {
		return
	}
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	b.WriteString("|")
	b.WriteString(tag)
	for _, id := range sorted {
		fmt.Fprintf(b, ",%d", id)
	}
}
