package serve

import (
	"container/list"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vecmath"
)

// resultCache is the versioned LRU result cache: one bounded map from
// canonicalized request keys to finished rankings, each entry stamped
// with the model epoch it was computed under. Update (and therefore HTTP
// Reload) bumps the epoch with one atomic add — it never takes the cache
// lock — and every entry stamped under an older epoch becomes
// unreachable at once: get compares the entry's stamp against the epoch
// the caller pinned and treats a mismatch as a miss (deleting the entry
// lazily). Hot-swapping a model therefore invalidates the whole cache
// atomically without blocking readers or walking entries.
//
// Epoch/snapshot ordering is what makes a stale hit impossible. Writers
// pin the epoch BEFORE loading the snapshot (Server.pin) and Update
// stores the new snapshot BEFORE bumping the epoch; so a request that
// pinned epoch e computed its result on a snapshot at least as new as
// e's. If a reload sneaks between a request's pin and its store, the
// fresh result is stamped with the older epoch and over-invalidated —
// the safe direction. A result computed on the old snapshot can never be
// stamped with the new epoch.
type resultCache struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	stale     atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one cached ranking; items is read-only after insertion
// (hits share the slice, so nothing may mutate it).
type cacheEntry struct {
	key   string
	epoch uint64
	items []vecmath.Scored
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the ranking cached under key if it was stamped with the
// caller's pinned epoch. An entry from an older epoch is removed and
// reported as a (stale) miss.
func (rc *resultCache) get(epoch uint64, key string) ([]vecmath.Scored, bool) {
	rc.mu.Lock()
	el, ok := rc.entries[key]
	if !ok {
		rc.mu.Unlock()
		rc.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		rc.ll.Remove(el)
		delete(rc.entries, key)
		rc.mu.Unlock()
		rc.stale.Add(1)
		rc.misses.Add(1)
		return nil, false
	}
	rc.ll.MoveToFront(el)
	// snapshot the slice header before unlocking: put() may overwrite
	// ent.items under the lock (two misses racing to fill one key), and
	// a post-unlock field read would tear against it. The slice contents
	// are safe either way — put stores fresh clones it never mutates.
	items := ent.items
	rc.mu.Unlock()
	rc.hits.Add(1)
	return items, true
}

// put stores a copy of items under key, stamped with the epoch the
// caller pinned before computing them, evicting from the LRU tail past
// capacity.
func (rc *resultCache) put(epoch uint64, key string, items []vecmath.Scored) {
	stored := slices.Clone(items)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch, ent.items = epoch, stored
		rc.ll.MoveToFront(el)
		return
	}
	rc.entries[key] = rc.ll.PushFront(&cacheEntry{key: key, epoch: epoch, items: stored})
	for rc.ll.Len() > rc.cap {
		back := rc.ll.Back()
		rc.ll.Remove(back)
		delete(rc.entries, back.Value.(*cacheEntry).key)
		rc.evictions.Add(1)
	}
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Epoch     uint64 `json:"epoch"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Stale     int64  `json:"stale"`
	Evictions int64  `json:"evictions"`
}

func (rc *resultCache) stats() CacheStats {
	rc.mu.Lock()
	size := rc.ll.Len()
	rc.mu.Unlock()
	return CacheStats{
		Capacity:  rc.cap,
		Size:      size,
		Epoch:     rc.epoch.Load(),
		Hits:      rc.hits.Load(),
		Misses:    rc.misses.Load(),
		Stale:     rc.stale.Load(),
		Evictions: rc.evictions.Load(),
	}
}

// cacheKey canonicalizes a request into its cache identity: the query
// subject (user + recent baskets, in order — basket order drives the
// Markov term) and every plan field that can change the returned page.
// Workers, Precision and Pruned are deliberately absent: the executor's
// rankings are byte-identical across worker counts, precisions and the
// branch-and-bound engine (the properties the plan-equivalence suites
// pin), so requests differing only in those knobs share one entry. Category lists are sorted copies — filters are
// set semantics, so permuted lists share an entry too.
func cacheKey(req *Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "u%d|k%d|o%d", req.User, req.K, req.Offset)
	for _, basket := range req.Recent {
		b.WriteString("|r")
		for _, it := range basket {
			fmt.Fprintf(&b, ",%d", it)
		}
	}
	if req.Cascade != nil {
		b.WriteString("|c")
		for _, f := range req.Cascade.KeepFrac {
			fmt.Fprintf(&b, ",%g", f)
		}
	}
	if req.MaxPerCategory > 0 {
		fmt.Fprintf(&b, "|d%d@%d", req.MaxPerCategory, req.CatDepth)
	}
	if req.ExcludePurchased {
		b.WriteString("|xp")
	}
	writeSortedIDs(&b, "ca", req.Categories)
	writeSortedIDs(&b, "cx", req.ExcludeCategories)
	return b.String()
}

func writeSortedIDs(b *strings.Builder, tag string, ids []int32) {
	if len(ids) == 0 {
		return
	}
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	b.WriteString("|")
	b.WriteString(tag)
	for _, id := range sorted {
		fmt.Fprintf(b, ",%d", id)
	}
}
