package serve

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/synth"
	"repro/internal/taxonomy"
	"repro/internal/train"
	"repro/internal/vecmath"
)

func trainedModel(t *testing.T) (*model.TF, *dataset.Dataset) {
	t.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          270,
		Skew:           0.4,
	}, vecmath.NewRNG(61))
	cfg := synth.DefaultConfig()
	cfg.Users = 300
	data, _, err := synth.Generate(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := model.Params{K: 8, TaxonomyLevels: 4, MarkovOrder: 1, Alpha: 1, InitStd: 0.01}
	m, err := model.New(tree, data.NumUsers(), p, vecmath.NewRNG(62))
	if err != nil {
		t.Fatal(err)
	}
	tc := train.DefaultConfig()
	tc.Epochs = 8
	if _, err := train.Train(m, data, tc); err != nil {
		t.Fatal(err)
	}
	return m, data
}

func TestServerBasicRequest(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	resp, err := s.Recommend(Request{User: 3, Recent: data.Users[3].Baskets, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 5 {
		t.Fatalf("got %d items", len(resp))
	}
}

func TestServerValidation(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	if _, err := s.Recommend(Request{User: 3, K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := s.Recommend(Request{User: 99999, K: 5}); err == nil {
		t.Fatal("expected error for out-of-range user")
	}
}

func TestServerSessionRequest(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	resp, err := s.Recommend(Request{User: -1, Recent: []dataset.Basket{{7}}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 5 {
		t.Fatalf("got %d items", len(resp))
	}
}

func TestServerCascadeAndDiversify(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	cc := infer.UniformCascade(m.Tree.Depth(), 1.0)
	casc, err := s.Recommend(Request{User: 0, K: 8, Cascade: &cc})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s.Recommend(Request{User: 0, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range naive {
		if casc[i].ID != naive[i].ID {
			t.Fatal("full-keep cascade must match naive")
		}
	}
	div, err := s.Recommend(Request{User: 0, K: 8, MaxPerCategory: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, item := range div {
		cat := m.Tree.AncestorAtDepth(m.Tree.ItemNode(item.ID), m.Tree.Depth()-1)
		if seen[cat] {
			t.Fatal("diversified response repeated a category")
		}
		seen[cat] = true
	}
}

func TestServerBatchMatchesSerial(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{User: i % data.NumUsers(), K: 5}
	}
	batch := s.Batch(reqs, 8)
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("req %d: %v", i, r.Err)
		}
		serial, err := s.Recommend(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range serial {
			if serial[j] != r.Items[j] {
				t.Fatalf("req %d item %d differs", i, j)
			}
		}
	}
	// bad request inside a batch is isolated
	reqs[0].User = 1 << 30
	batch = s.Batch(reqs, 4)
	if batch[0].Err == nil {
		t.Fatal("expected error for bad user in batch")
	}
	if batch[1].Err != nil {
		t.Fatal("error leaked to neighbouring request")
	}
}

func TestServerConcurrentRequestsDuringUpdates(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// hammer with requests
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Recommend(Request{User: (w*31 + i) % data.NumUsers(), K: 3}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// swap snapshots concurrently
	for i := 0; i < 20; i++ {
		s.Update(m)
	}
	close(stop)
	wg.Wait()
}

// TestServerConcurrentBatchDuringUpdates drives Batch (with its pooled
// query buffers) and single Recommends while snapshots swap underneath;
// run under -race this pins down the Update/run pool interaction.
func TestServerConcurrentBatchDuringUpdates(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	cc := infer.UniformCascade(m.Tree.Depth(), 0.5)
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = Request{User: i % data.NumUsers(), K: 4}
		switch i % 3 {
		case 1:
			reqs[i].Cascade = &cc
		case 2:
			reqs[i].MaxPerCategory = 2
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					for j, r := range s.Batch(reqs, 3) {
						if r.Err != nil {
							t.Errorf("batch req %d: %v", j, r.Err)
							return
						}
					}
				} else if _, err := s.Recommend(reqs[i%len(reqs)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 30; i++ {
		s.Update(m)
	}
	close(stop)
	wg.Wait()
}

func TestServerEmptyBatch(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	if out := s.Batch(nil, 4); len(out) != 0 {
		t.Fatal("empty batch should return empty result")
	}
}
