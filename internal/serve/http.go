package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// HTTP exposes a Server over JSON endpoints — the network-facing
// deployment shape of the recommender. Endpoints:
//
//	POST /v1/recommend             {"user":17,"k":10,"strategy":"cascade","keep":0.2,...}
//	POST /v1/recommend/user        deprecated alias (strategy fixed to naive)
//	POST /v1/recommend/session     deprecated alias (naive, user forced to -1)
//	POST /v1/recommend/cascade     deprecated alias (strategy fixed to cascade)
//	POST /v1/recommend/diversified deprecated alias (strategy fixed to diversified)
//	GET  /v1/stats
//	GET  /healthz
//
// The wire shapes are the internal/api types (see docs/API.md).
// /v1/recommend is the unified plan endpoint: "strategy" picks naive
// (default), cascade or diversified. The four per-shape routes are thin
// adapters — each rewrites its body into the unified form
// (api.RecommendRequest.RewriteLegacy) and runs the exact same plan
// path, answering with Deprecation and Link (successor-version) headers
// and counting into the legacy_requests stat so their removal can be
// data-driven.
//
// Responses are api.RecommendResponse: the ranked items (with the quota
// category annotated on diversified rankings), the snapshot epoch the
// ranking ran on, and the model's content fingerprint. Errors are the
// structured api.ErrorBody envelope with a typed code.
//
// Every recommend endpoint accepts request-time candidate filtering and
// pagination, as JSON fields (exclude_purchased, categories,
// exclude_categories, offset) or query parameters (?exclude_purchased=,
// ?category=3,17, ?exclude_category=, ?offset=; parameters win). Filters
// apply before the ranking heap, so k items come back even when most of
// the catalog is filtered out. A "pruned" field or ?pruned= parameter
// turns on taxonomy-guided branch-and-bound retrieval for naive sweeps;
// rankings are byte-identical either way (see infer.Plan.Pruned).
//
// Reload hot-swaps a retrained snapshot: in-flight requests finish on the
// snapshot they loaded, new requests see the new one (Server.Update is an
// atomic pointer swap, so nothing blocks or drops). cmd/tfrec-serve wires
// Reload to SIGHUP.
type HTTP struct {
	srv *Server
	// reload produces a fresh trainable model for Reload; reloadSnap, when
	// set (SetSnapshotReload), takes precedence and produces a loaded
	// snapshot instead — the zero-Compose mmap reload path.
	reload     func() (*model.TF, error)
	reloadSnap func() (*model.Snapshot, error)
	start      time.Time
	batcher    *Batcher
	maxBody    int64
	adm        *Admission
	timeout    time.Duration

	users       atomic.Int64
	sessions    atomic.Int64
	cascades    atomic.Int64
	diversified atomic.Int64
	plans       atomic.Int64
	legacy      atomic.Int64
	errors      atomic.Int64
	reloads     atomic.Int64
	cacheHits   atomic.Int64
	deadlines   atomic.Int64
}

// DefaultMaxBodyBytes caps request bodies unless SetMaxBodyBytes chooses
// otherwise. Recommend bodies are a few hundred bytes of ids; 1 MiB is
// three orders of magnitude of headroom while keeping a hostile client
// from streaming gigabytes into the JSON decoder.
const DefaultMaxBodyBytes = 1 << 20

// DeprecationDate is the RFC 9745 Deprecation header value the legacy
// per-shape endpoints answer with: the date their deprecation was
// announced (the unified plan endpoint became the only documented
// route), as "@" + Unix seconds.
const DeprecationDate = "@1785542400" // 2026-08-01

// SuccessorLink is the RFC 8288 Link header pointing legacy-endpoint
// clients at the unified route.
const SuccessorLink = `</v1/recommend>; rel="successor-version"`

// NewHTTP wraps srv. reload, which may be nil, produces a fresh model for
// Reload (typically by re-reading the model file).
func NewHTTP(srv *Server, reload func() (*model.TF, error)) *HTTP {
	return &HTTP{srv: srv, reload: reload, start: time.Now(), maxBody: DefaultMaxBodyBytes}
}

// SetMaxBodyBytes overrides the request-body size limit; n <= 0 restores
// the default. Bodies over the limit fail with 413. Call before the
// handler starts serving.
func (h *HTTP) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	h.maxBody = n
}

// SetAdmission puts a load-shedding front before the recommend
// endpoints: at most maxInflight requests execute concurrently, at most
// maxQueue more wait up to queueWait for a slot, and everything beyond
// is rejected with 429 (queue full) or 503 (wait expired), both carrying
// Retry-After. maxInflight <= 0 disables admission control. /v1/stats
// and /healthz are never throttled — an overloaded server must stay
// observable. Call before the handler starts serving.
func (h *HTTP) SetAdmission(maxInflight, maxQueue int, queueWait time.Duration) {
	if maxInflight <= 0 {
		h.adm = nil
		return
	}
	h.adm = NewAdmission(maxInflight, maxQueue, queueWait)
}

// SetTimeout bounds each recommend request's total time — admission
// queue wait, batch window and sweep included (the deadline is armed
// before admission). A deadline firing mid-sweep abandons the query at
// the next shard boundary (infer.ErrDeadline) and answers 503 with
// Retry-After, counted in the deadline stat. A request waiting on a
// coalesced batch stops waiting at its deadline (same 503, same
// counter), though the shared sweep itself completes for the other
// waiters — cancelling shared work would cancel bystanders. d <= 0
// disables (the default). Call before the handler starts serving.
func (h *HTTP) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.timeout = d
}

// Close releases the handler's request-coalescing front, flushing any
// pending micro-batch so blocked callers finish promptly. Call it during
// shutdown, before or alongside http.Server.Shutdown; requests that
// arrive afterwards still get answers (unbatched).
func (h *HTTP) Close() {
	if h.batcher != nil {
		h.batcher.Close()
	}
}

// EnableBatching puts a coalescing front before the full-scan endpoints:
// concurrent user/session requests arriving within window are executed as
// one multi-query sweep (see Batcher). Cascaded and diversified requests
// are unaffected, as are requests carrying a non-zero ?workers= cap —
// those run per-request so the cap can be honored (?workers=0, the
// whole-pool default, still coalesces). Call before the handler starts
// serving.
func (h *HTTP) EnableBatching(maxBatch int, window time.Duration) {
	h.batcher = NewBatcher(h.srv, maxBatch, window)
}

// SetSnapshotReload makes Reload fetch a loaded snapshot (typically
// model.LoadFile on the model path — the mmap fast path) instead of a
// trainable model. The server takes ownership of each snapshot; the
// previous one is released once in-flight requests drain. Call before
// the handler starts serving.
func (h *HTTP) SetSnapshotReload(fn func() (*model.Snapshot, error)) {
	h.reloadSnap = fn
}

// Reload fetches a retrained model via the reload hook and swaps it in
// without disturbing in-flight requests.
func (h *HTTP) Reload() error {
	if h.reloadSnap != nil {
		sn, err := h.reloadSnap()
		if err != nil {
			return fmt.Errorf("serve: reload: %w", err)
		}
		h.srv.UpdateSnapshot(sn)
		h.reloads.Add(1)
		return nil
	}
	if h.reload == nil {
		return fmt.Errorf("serve: no reload source configured")
	}
	m, err := h.reload()
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	h.srv.Update(m)
	h.reloads.Add(1)
	return nil
}

// Handler returns the route table.
func (h *HTTP) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/recommend", h.recommend(&h.plans, api.EndpointUnified))
	mux.HandleFunc("POST /v1/recommend/user", h.recommend(&h.users, api.EndpointUser))
	mux.HandleFunc("POST /v1/recommend/session", h.recommend(&h.sessions, api.EndpointSession))
	mux.HandleFunc("POST /v1/recommend/cascade", h.recommend(&h.cascades, api.EndpointCascade))
	mux.HandleFunc("POST /v1/recommend/diversified", h.recommend(&h.diversified, api.EndpointDiversified))
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// unknown routes answer the structured envelope, not net/http's
	// plain-text 404, so every error a client sees parses the same way
	mux.Handle("/", api.NotFoundHandler())
	return mux
}

// toRequest translates the (already legacy-rewritten) wire form against
// the current snapshot: the strategy string resolves the plan shape and
// the shape-specific fields are validated for it.
func toRequest(wr api.RecommendRequest, c *model.Composed) (Request, error) {
	req := Request{
		User:              wr.User,
		K:                 wr.K,
		Offset:            wr.Offset,
		ExcludePurchased:  wr.ExcludePurchased,
		Categories:        wr.Categories,
		ExcludeCategories: wr.ExcludeCategories,
		Pruned:            wr.Pruned,
	}
	for _, b := range wr.Recent {
		req.Recent = append(req.Recent, dataset.Basket(b))
	}
	strat, err := infer.ParseStrategy(wr.Strategy)
	if err != nil {
		return req, err
	}
	switch strat {
	case infer.StrategyCascade:
		kf := wr.KeepFrac
		if len(kf) == 0 {
			if wr.Keep <= 0 {
				return req, fmt.Errorf("cascade request needs keep_frac or keep")
			}
			kf = infer.UniformCascade(c.Tree.Depth(), wr.Keep).KeepFrac
		}
		req.Cascade = &infer.CascadeConfig{KeepFrac: kf}
	case infer.StrategyDiversified:
		if wr.MaxPerCategory <= 0 {
			return req, fmt.Errorf("diversified request needs max_per_category > 0")
		}
		req.MaxPerCategory = wr.MaxPerCategory
		req.CatDepth = wr.CatDepth
	}
	return req, nil
}

// queryParams applies the per-request knobs carried as URL query
// parameters; parameters override the JSON body's fields.
func queryParams(r *http.Request, req *Request) error {
	qv := r.URL.Query()
	// ?workers=n caps the request's share of the inference pool
	// (0 = whole pool, 1 = serial); bad values are a client error
	if ws := qv.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return fmt.Errorf("bad workers parameter %q", ws)
		}
		req.Workers = n
	}
	// ?precision=f32|f64|int8 overrides the scoring pipeline (rankings are
	// identical; the knob is for benchmarking and escalation triage)
	if ps := qv.Get("precision"); ps != "" {
		p, err := model.ParsePrecision(ps)
		if err != nil {
			return fmt.Errorf("bad precision parameter %q (want f32, f64 or int8)", ps)
		}
		req.Precision = p
	}
	if es := qv.Get("exclude_purchased"); es != "" {
		v, err := strconv.ParseBool(es)
		if err != nil {
			return fmt.Errorf("bad exclude_purchased parameter %q", es)
		}
		req.ExcludePurchased = v
	}
	if cs := qv.Get("category"); cs != "" {
		nodes, err := infer.ParseIDList(cs)
		if err != nil {
			return fmt.Errorf("bad category parameter %q", cs)
		}
		req.Categories = nodes
	}
	if cs := qv.Get("exclude_category"); cs != "" {
		nodes, err := infer.ParseIDList(cs)
		if err != nil {
			return fmt.Errorf("bad exclude_category parameter %q", cs)
		}
		req.ExcludeCategories = nodes
	}
	if os := qv.Get("offset"); os != "" {
		n, err := strconv.Atoi(os)
		if err != nil || n < 0 {
			return fmt.Errorf("bad offset parameter %q", os)
		}
		req.Offset = n
	}
	// ?pruned=true turns on branch-and-bound retrieval (rankings are
	// byte-identical; the knob trades batch coalescing for sublinear sweeps)
	if ps := qv.Get("pruned"); ps != "" {
		v, err := strconv.ParseBool(ps)
		if err != nil {
			return fmt.Errorf("bad pruned parameter %q", ps)
		}
		req.Pruned = v
	}
	return nil
}

func (h *HTTP) recommend(counter *atomic.Int64, ep api.Endpoint) http.HandlerFunc {
	legacy := ep != api.EndpointUnified
	return func(w http.ResponseWriter, r *http.Request) {
		if legacy {
			h.legacy.Add(1)
			w.Header().Set("Deprecation", DeprecationDate)
			w.Header().Set("Link", SuccessorLink)
		}
		// the per-request budget is armed before admission so the queue
		// wait spends it too — "-timeout 2s" bounds the request, not just
		// its sweep; admission still comes before the body parse so a
		// shed request costs a channel poll and a JSON error, not decoder
		// garbage
		ctx := r.Context()
		if h.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, h.timeout)
			defer cancel()
		}
		if h.adm != nil {
			release, code := h.adm.Acquire(ctx)
			if release == nil {
				h.shed(w, code)
				return
			}
			defer release()
		}
		// bound the body before the decoder touches it: a streamed
		// gigabyte must die at the limit, not in the decoder's buffers
		r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
		var wr api.RecommendRequest
		if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				h.fail(w, api.CodeBodyTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			h.fail(w, api.CodeBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		// the legacy adapters ARE this rewrite: after it, a legacy request
		// is indistinguishable from its unified equivalent and takes the
		// identical plan path below
		wr.RewriteLegacy(ep)
		// pin one (epoch, snapshot) pair for request translation, cache
		// identity and execution, so a concurrent hot swap (which may
		// change taxonomy depth) cannot invalidate a request between the
		// steps — or stamp its result under the wrong cache epoch. The
		// reference also keeps a memory-mapped snapshot mapped until this
		// request finishes with it.
		epoch, ref := h.srv.pin()
		defer ref.release()
		c := ref.c
		req, err := toRequest(wr, c)
		if err != nil {
			h.fail(w, api.CodeBadRequest, err)
			return
		}
		if err := queryParams(r, &req); err != nil {
			h.fail(w, api.CodeBadRequest, err)
			return
		}
		// a request pinning a non-zero fan-out opts out of coalescing, as
		// do item filters (the shared sweep is one visitation pattern; the
		// batcher would only sub-group them back onto the per-request
		// path after the window wait), a shard-scoped server (whose range
		// mask is a filter on every plan) and a precision override the
		// batch would not honor; pinning the precision the batch already
		// runs at keeps the coalescing win
		var resp Response
		batchable := req.Precision == model.PrecisionDefault ||
			req.Precision == h.srv.effectivePrecision(c, Request{})
		if h.batcher != nil && req.Workers == 0 && batchable && !req.hasFilter() &&
			req.Cascade == nil && req.MaxPerCategory <= 0 &&
			!req.Pruned && !h.srv.pruned && !h.srv.ranged() {
			// probe the cache before joining a batch: a hot key must not
			// pay the coalescing window for a result that is already sitting
			// in memory (the batcher fills the same epoch-stamped cache)
			if items, ok := h.srv.cached(epoch, req); ok {
				resp = Response{Items: items, Cached: true}
			} else {
				items, err := h.batcher.RecommendContext(ctx, req)
				resp = Response{Items: items, Err: err}
			}
		} else {
			resp = h.srv.run(ctx, epoch, c, req)
		}
		if resp.Err != nil {
			// a deadline expired — the armed per-request budget or a
			// middleware deadline — whether mid-sweep (infer.ErrDeadline)
			// or while waiting on a coalesced batch (bare
			// DeadlineExceeded; the shared sweep finishes for the other
			// waiters). That is load, not client error: shed with
			// Retry-After so well-behaved clients back off, and count it
			// so /v1/stats shows deadline pressure. The check is on the
			// wrapped cause, NOT on ErrDeadline alone: a client that hung
			// up mid-sweep also surfaces as ErrDeadline (wrapping
			// context.Canceled) and must not inflate the deadline stat.
			if errors.Is(resp.Err, context.DeadlineExceeded) {
				h.deadlines.Add(1)
				h.shed(w, api.CodeDeadlineExceeded)
				return
			}
			// a cancellation means the client went away (mid-batch-wait or
			// mid-sweep) — not a serving error worth alerting on. Still
			// write 503 in case the connection is alive, so nothing reads
			// as an empty 200.
			if errors.Is(resp.Err, context.Canceled) {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			// request validation failures are typed; anything else that
			// escapes the executor is a server fault, not a client error
			code := api.CodeInternal
			var reqErr *RequestError
			if errors.As(resp.Err, &reqErr) {
				code = api.CodeBadRequest
			}
			h.fail(w, code, resp.Err)
			return
		}
		if resp.Cached {
			h.cacheHits.Add(1)
		}
		counter.Add(1)
		h.writeJSON(w, toWire(c, ref.gen, req, resp.Items))
	}
}

// shed answers a load-shedding rejection: 429 (wait queue full) or 503
// (queue wait or request deadline expired), with a Retry-After hinting
// clients to back off for a beat rather than hammering a saturated
// server. Sheds are intentional degradation, not serving errors, so the
// errors counter is untouched — the admission/deadline counters in
// /v1/stats carry them.
func (h *HTTP) shed(w http.ResponseWriter, code api.Code) {
	api.WriteError(w, api.ErrorDetail{Code: code, Message: shedMessage(code), RetryAfter: 1})
}

// shedMessage is the human line for each load-shedding code.
func shedMessage(code api.Code) string {
	switch code {
	case api.CodeQueueFull:
		return "admission queue full, retry later"
	case api.CodeDeadlineExceeded:
		return "request deadline exceeded, retry later"
	default:
		return "overloaded, retry later"
	}
}

// toWire renders a ranking as the wire response: items, the snapshot
// generation the ranking ran on, and the model's content fingerprint. A
// diversified ranking annotates each item with the taxonomy node its
// per-category quota was charged to — the field a scatter-gather router
// needs to re-apply the quota merge across shards.
func toWire(c *model.Composed, gen uint64, req Request, items []vecmath.Scored) api.RecommendResponse {
	out := api.RecommendResponse{
		Items:   make([]api.Item, len(items)),
		Epoch:   gen,
		ModelID: c.Fingerprint(),
	}
	catDepth := -1
	if req.MaxPerCategory > 0 {
		catDepth = infer.DiversifyDepth(c, req.CatDepth)
	}
	for i, s := range items {
		out.Items[i] = api.Item{Item: s.ID, Score: s.Score}
		if catDepth >= 0 {
			out.Items[i].Category = int32(c.Index.ItemCategory(s.ID, catDepth))
		}
	}
	return out
}

// statsResponse is the wire shape of GET /v1/stats (canonically
// api.Stats; aliased for the serve-level tests that decode it).
type statsResponse = api.Stats

func (h *HTTP) stats(w http.ResponseWriter, r *http.Request) {
	_, ref := h.srv.pin()
	defer ref.release()
	c := ref.c
	var out statsResponse
	out.Model.Epoch = h.srv.Epoch()
	out.Model.FormatVersion, out.Model.Mapped = h.srv.SnapshotInfo()
	out.Model.Users = c.User.Rows()
	out.Model.Items = c.NumItems()
	out.Model.Nodes = c.Tree.NumNodes()
	out.Model.Depth = c.Tree.Depth()
	out.Model.K = c.K()
	out.Model.MarkovOrder = c.P.MarkovOrder
	out.Model.UseBias = c.P.UseBias
	out.Model.ModelID = c.Fingerprint()
	if lo, hi, ok := h.srv.ItemRange(); ok {
		// the range assertion a router's topology bootstrap reads: which
		// contiguous catalog slice this process answers for
		out.Model.ItemRange = &api.ItemRange{Lo: lo, Hi: hi}
	}
	out.Served.User = h.users.Load()
	out.Served.Session = h.sessions.Load()
	out.Served.Cascade = h.cascades.Load()
	out.Served.Diversified = h.diversified.Load()
	out.Served.Plan = h.plans.Load()
	out.Served.Errors = h.errors.Load()
	out.Served.Legacy = h.legacy.Load()
	out.Inference.PoolWorkers = h.srv.Pool().Workers()
	out.Inference.Precision = h.srv.Precision().String()
	out.Inference.F32Escalations = infer.F32Escalations()
	out.Inference.I8Escalations = infer.I8Escalations()
	out.Inference.Filters.ExcludePurchased, out.Inference.Filters.Category, out.Inference.Filters.Paged = h.srv.FilterStats()
	out.Inference.Kernels = vecmath.Kernels()
	ps := infer.PruneCounters()
	out.Inference.Pruning.SubtreesPruned = ps.SubtreesPruned
	out.Inference.Pruning.ItemsPruned = ps.ItemsPruned
	out.Inference.Pruning.BoundEvals = ps.BoundEvals
	out.Inference.Pruning.Fallbacks = ps.Fallbacks
	out.Inference.Pruning.Default = h.srv.pruned
	if h.batcher != nil {
		out.Inference.Batching = true
		out.Inference.Batches, out.Inference.BatchedReqs = h.batcher.Stats()
	}
	if cs, ok := h.srv.CacheStats(); ok {
		out.Cache = &api.StatsCache{CacheStats: cs, HTTPHits: h.cacheHits.Load()}
	}
	if h.adm != nil {
		as := h.adm.Stats()
		out.Admission = &as
	}
	out.DeadlineExceeded = h.deadlines.Load()
	out.TimeoutMS = h.timeout.Milliseconds()
	out.Goroutines = runtime.NumGoroutine()
	out.Reloads = h.reloads.Load()
	out.UptimeSeconds = time.Since(h.start).Seconds()
	h.writeJSON(w, out)
}

func (h *HTTP) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		h.errors.Add(1)
	}
}

func (h *HTTP) fail(w http.ResponseWriter, code api.Code, err error) {
	h.errors.Add(1)
	api.WriteError(w, api.ErrorDetail{Code: code, Message: err.Error()})
}
