package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// Batcher coalesces concurrent Recommend calls into one multi-query sweep
// over the shared factor slab. Full-scan requests arriving within a short
// window are collected into a micro-batch and executed by
// infer.MultiNaiveInto (through the server's pool when it has one): each
// cache-sized shard of the item slab is read once and scored against
// every query in the batch, so B coalesced requests stream the catalog's
// factors through memory once instead of B times. Cascaded and
// diversified requests, whose access patterns don't share the full sweep,
// fall through to the per-request path inside the same batch.
//
// A batch is cut when it reaches MaxBatch requests or when the oldest
// request has waited Window; every request in a batch runs against one
// pinned snapshot, so a concurrent hot swap never splits a batch across
// models.
type Batcher struct {
	s        *Server
	maxBatch int
	window   time.Duration

	mu     sync.Mutex
	cur    *microBatch
	closed bool

	batches   atomic.Int64
	coalesced atomic.Int64
}

// microBatch is one in-flight coalescing unit; done is closed after
// resps is fully populated.
type microBatch struct {
	reqs  []Request
	resps []Response
	timer *time.Timer
	done  chan struct{}
}

// NewBatcher wraps the server in a coalescing front. maxBatch < 1 is
// clamped to 1 (every request is its own batch); window <= 0 defaults to
// 500µs — long enough to coalesce under load, short enough to be noise
// next to a catalog sweep.
func NewBatcher(s *Server, maxBatch int, window time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if window <= 0 {
		window = 500 * time.Microsecond
	}
	return &Batcher{s: s, maxBatch: maxBatch, window: window}
}

// Recommend executes one request through the coalescing front, blocking
// until its batch is cut and swept (at most Window plus the sweep time).
func (b *Batcher) Recommend(req Request) ([]vecmath.Scored, error) {
	return b.RecommendContext(context.Background(), req)
}

// RecommendContext is Recommend with cancellation: a caller whose ctx
// ends while its batch is still pending stops waiting and gets ctx's
// error. The request itself stays in the batch — the sweep is shared
// work that other coalesced callers are waiting on, so one abandoned
// caller never cancels or re-cuts the batch; its slot is simply computed
// and discarded.
func (b *Batcher) RecommendContext(ctx context.Context, req Request) ([]vecmath.Scored, error) {
	b.mu.Lock()
	if b.closed {
		// a closed batcher still answers — shutdown must not strand late
		// arrivals — it just stops coalescing them
		b.mu.Unlock()
		epoch, ref := b.s.pin()
		defer ref.release()
		resp := b.s.run(ctx, epoch, ref.c, req)
		return resp.Items, resp.Err
	}
	mb := b.cur
	if mb == nil {
		mb = &microBatch{done: make(chan struct{})}
		b.cur = mb
		mb.timer = time.AfterFunc(b.window, func() { b.cutAndRun(mb) })
	}
	idx := len(mb.reqs)
	mb.reqs = append(mb.reqs, req)
	if len(mb.reqs) >= b.maxBatch {
		b.detachLocked(mb)
		b.mu.Unlock()
		b.run(mb)
	} else {
		b.mu.Unlock()
	}
	select {
	case <-mb.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	resp := mb.resps[idx]
	return resp.Items, resp.Err
}

// Close flushes the batcher: the pending micro-batch (if any) is cut and
// executed immediately, so callers blocked on a long window get their
// results now instead of hanging into shutdown. Calls arriving after
// Close execute unbatched. Close is idempotent and safe to race with
// Recommend and the window timer.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	mb := b.cur
	if mb != nil {
		b.detachLocked(mb)
	}
	b.mu.Unlock()
	if mb != nil {
		b.run(mb)
	}
}

// cutAndRun is the window-expiry path; it is a no-op if the size trigger
// already detached the batch.
func (b *Batcher) cutAndRun(mb *microBatch) {
	b.mu.Lock()
	if b.cur != mb {
		b.mu.Unlock()
		return
	}
	b.detachLocked(mb)
	b.mu.Unlock()
	b.run(mb)
}

func (b *Batcher) detachLocked(mb *microBatch) {
	b.cur = nil
	mb.timer.Stop()
}

// run executes a detached batch: full-scan requests share one multi-query
// plan batch, everything else runs per-request, all against one snapshot.
func (b *Batcher) run(mb *microBatch) {
	defer close(mb.done)
	epoch, ref := b.s.pin()
	defer ref.release()
	c := ref.c
	batchPrec := b.s.effectivePrecision(c, Request{})
	mb.resps = make([]Response, len(mb.reqs))
	var (
		qs   [][]float64
		pls  []infer.Plan
		idxs []int
	)
	for i, req := range mb.reqs {
		// the multi-query sweep is shared work at one precision and one
		// visitation pattern, so a request pinning a different precision,
		// carrying an item filter, or asking for the pruned descent (whose
		// visitation depends on the query) — as well as the cascaded and
		// diversified shapes — sub-groups onto the per-request path, where
		// its plan holds in full
		if req.Cascade != nil || req.MaxPerCategory > 0 || req.hasFilter() ||
			req.Pruned || b.s.pruned || b.s.ranged() ||
			(req.Precision != model.PrecisionDefault && req.Precision != batchPrec) {
			mb.resps[i] = b.s.run(context.Background(), epoch, c, req)
			continue
		}
		if err := req.validate(c); err != nil {
			mb.resps[i] = Response{Err: err}
			continue
		}
		b.s.countFilters(req)
		q := b.s.getBuf(c.K())
		if req.User == -1 {
			c.BuildSessionQueryInto(req.Recent, q)
		} else {
			c.BuildQueryInto(req.User, req.Recent, q)
		}
		qs = append(qs, q)
		pls = append(pls, infer.Plan{K: req.K, Offset: req.Offset, Precision: batchPrec})
		idxs = append(idxs, i)
	}
	if len(qs) > 0 {
		results, err := b.s.sweep.ExecuteBatch(context.Background(), c, qs, pls)
		for j, i := range idxs {
			if err != nil {
				// by construction every batched plan is an unfiltered naive
				// plan at one precision, so this cannot trip; degrade to a
				// per-request answer rather than failing the whole batch
				mb.resps[i] = b.s.run(context.Background(), epoch, c, mb.reqs[i])
			} else {
				mb.resps[i] = Response{Items: results[j].Items}
				if b.s.cache != nil {
					// batched answers feed the same epoch-stamped cache the
					// per-request path fills, so a hot key coalesced once is
					// a cache hit from then on
					b.s.cache.Put(epoch, cacheKey(&mb.reqs[i]), results[j].Items)
				}
			}
			b.s.putBuf(qs[j])
		}
	}
	b.batches.Add(1)
	b.coalesced.Add(int64(len(mb.reqs)))
}

// Stats reports how many batches were cut and how many requests they
// carried in total (coalesced/batches is the mean batch size).
func (b *Batcher) Stats() (batches, coalesced int64) {
	return b.batches.Load(), b.coalesced.Load()
}
