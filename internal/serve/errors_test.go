package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/model"
)

// Every client mistake must come back as a clean 4xx JSON error — and the
// body-size limit as 413 — never as a hung connection or a 500.
func TestHTTPErrorPaths(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	h := NewHTTP(s, nil)
	h.SetMaxBodyBytes(256)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	errBody := func(t *testing.T, resp *http.Response) string {
		t.Helper()
		defer resp.Body.Close()
		var e api.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error response is not JSON: %v", err)
		}
		if e.Err.Code == "" || e.Err.Message == "" {
			t.Fatalf("error envelope incomplete: %+v", e)
		}
		// the typed code must agree with the HTTP status it was served under
		if got := e.Err.Code.Status(); got != resp.StatusCode {
			t.Fatalf("code %s maps to %d but the response status is %d", e.Err.Code, got, resp.StatusCode)
		}
		return e.Err.Message
	}

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user", "application/json",
			strings.NewReader(`{"user": 3, "k": `))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		errBody(t, resp)
	})

	t.Run("unknown user", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user", "application/json",
			strings.NewReader(`{"user": 99999, "k": 5}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if msg := errBody(t, resp); !strings.Contains(msg, "out of range") {
			t.Fatalf("unhelpful error: %q", msg)
		}
	})

	t.Run("oversize body gets 413", func(t *testing.T) {
		big := `{"user":3,"k":5,"recent":[[` + strings.Repeat("1,", 400) + `1]]}`
		resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user", "application/json",
			strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
		if msg := errBody(t, resp); !strings.Contains(msg, "exceeds") {
			t.Fatalf("unhelpful error: %q", msg)
		}
	})

	t.Run("bad workers parameter", func(t *testing.T) {
		for _, ws := range []string{"abc", "-1", "1.5"} {
			resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user?workers="+ws,
				"application/json", strings.NewReader(`{"user":3,"k":5}`))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("workers=%s: status %d, want 400", ws, resp.StatusCode)
			}
			errBody(t, resp)
		}
	})

	t.Run("bad precision parameter", func(t *testing.T) {
		for _, ps := range []string{"f16", "float64", "exact"} {
			resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user?precision="+ps,
				"application/json", strings.NewReader(`{"user":3,"k":5}`))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("precision=%s: status %d, want 400", ps, resp.StatusCode)
			}
			if msg := errBody(t, resp); !strings.Contains(msg, "precision") {
				t.Fatalf("unhelpful error: %q", msg)
			}
		}
	})
}

// Both explicit precisions must serve identical rankings over HTTP, and
// /v1/stats must surface the resolved default and the escalation counter.
func TestHTTPPrecisionKnob(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	h := NewHTTP(s, nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	resp32, out32 := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?precision=f32", `{"user":3,"k":8}`)
	resp64, out64 := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?precision=f64", `{"user":3,"k":8}`)
	respI8, outI8 := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?precision=int8", `{"user":3,"k":8}`)
	if resp32.StatusCode != http.StatusOK || resp64.StatusCode != http.StatusOK || respI8.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d/%d", resp32.StatusCode, resp64.StatusCode, respI8.StatusCode)
	}
	if !reflect.DeepEqual(out32, out64) {
		t.Fatalf("precision changed the ranking:\nf32 %+v\nf64 %+v", out32, out64)
	}
	if !reflect.DeepEqual(outI8, out64) {
		t.Fatalf("int8 precision changed the ranking:\nint8 %+v\nf64 %+v", outI8, out64)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inference.Precision != "f32" {
		t.Fatalf("stats precision %q, want f32 default", stats.Inference.Precision)
	}
	if stats.Inference.F32Escalations < 0 || stats.Inference.I8Escalations < 0 {
		t.Fatal("negative escalation counter")
	}
}

// The server-level precision option and the model-file preference must
// resolve in the documented order: request > server > snapshot > f32.
func TestPrecisionResolutionOrder(t *testing.T) {
	m, _ := trainedModel(t)
	m.Precision = model.PrecisionF64
	s := New(m)
	if got := s.Precision(); got != model.PrecisionF64 {
		t.Fatalf("snapshot preference ignored: %v", got)
	}
	s2 := New(m, WithPrecision(model.PrecisionF32))
	if got := s2.Precision(); got != model.PrecisionF32 {
		t.Fatalf("server option lost to snapshot: %v", got)
	}
	c := s2.snap.Load().c
	if got := s2.effectivePrecision(c, Request{Precision: model.PrecisionF64}); got != model.PrecisionF64 {
		t.Fatalf("request override lost: %v", got)
	}
}

// A caller abandoning a coalesced request mid-batch must unblock with the
// context error while the rest of the batch completes normally.
func TestBatcherCancelledMidBatch(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m, WithWorkers(2))
	defer s.Close()
	// a long window so the batch only cuts via the size trigger we control
	b := NewBatcher(s, 3, time.Hour)

	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := b.RecommendContext(ctx, Request{User: 1, K: 5})
		cancelled <- err
	}()
	// wait until the request is queued in the pending batch, then abandon it
	for {
		b.mu.Lock()
		queued := b.cur != nil && len(b.cur.reqs) == 1
		b.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelled; err != context.Canceled {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}

	// two more requests hit the size trigger; they must still be answered,
	// and the abandoned slot must have been computed and discarded
	want, err := s.Recommend(Request{User: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan Response, 2)
	for i := 0; i < 2; i++ {
		go func() {
			items, err := b.Recommend(Request{User: 2, K: 5})
			results <- Response{Items: items, Err: err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !reflect.DeepEqual(want, r.Items) {
			t.Fatalf("batch member diverged: %v vs %v", r.Items, want)
		}
	}
	if batches, coalesced := b.Stats(); batches != 1 || coalesced != 3 {
		t.Fatalf("stats %d batches / %d coalesced, want 1/3", batches, coalesced)
	}
}
