package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// saveV4File writes the model's v4 flat file and returns its path.
func saveV4File(t *testing.T, m *model.TF, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// Hot-swap memory-mapped snapshots under concurrent request and batch
// traffic. The refcount must keep each mapping alive until the last
// request pinned to it drains — under -race (and on any fault) a
// premature munmap shows up immediately — and every answer must be
// byte-identical to one of the two models' direct rankings. After a
// swap completes, the old model's cached results must never surface.
func TestMmapReloadUnderTraffic(t *testing.T) {
	mA, _ := trainedModel(t)
	mB, _ := trainedModel(t)
	mB = secondModel(t, mB)

	dir := t.TempDir()
	pathA := saveV4File(t, mA, dir, "a.tfrec")
	pathB := saveV4File(t, mB, dir, "b.tfrec")

	reqs := []Request{
		{User: 1, K: 5},
		{User: 2, K: 5},
		{User: 3, K: 5, ExcludeCategories: []int32{2}},
		{User: 4, K: 4, MaxPerCategory: 2},
	}
	plainA, plainB := New(mA), New(mB)
	wantA := make([][]vecmath.Scored, len(reqs))
	wantB := make([][]vecmath.Scored, len(reqs))
	distinct := false
	for i, r := range reqs {
		var err error
		if wantA[i], err = plainA.Recommend(r); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = plainB.Recommend(r); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantA[i], wantB[i]) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("test models are indistinguishable; the race assertions would be vacuous")
	}

	first, err := model.LoadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSnapshot(first, WithCache(64), WithWorkers(2))
	defer srv.Close()
	if format, _ := srv.SnapshotInfo(); format != 4 {
		t.Fatalf("snapshot format %d, want 4", format)
	}

	var path atomic.Pointer[string]
	path.Store(&pathA)
	h := NewHTTP(srv, nil)
	h.SetSnapshotReload(func() (*model.Snapshot, error) {
		return model.LoadFile(*path.Load())
	})

	// phase 1: concurrent hammer against a stream of mapped swaps. Every
	// old mapping is being closed while requests that pinned it still run.
	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := pathA
			if flip {
				p = pathB
			}
			flip = !flip
			path.Store(&p)
			if err := h.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 120; iter++ {
				i := (w + iter) % len(reqs)
				if iter%3 == 0 {
					i = 0 // repeat a key so the cached path is genuinely hot
				}
				var got []vecmath.Scored
				var err error
				if iter%5 == 4 {
					// the batch path pins its own reference
					out := srv.Batch([]Request{reqs[i]}, 1)
					got, err = out[0].Items, out[0].Err
				} else {
					got, err = srv.Recommend(reqs[i])
				}
				if err != nil {
					t.Errorf("probe %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(got, wantA[i]) && !reflect.DeepEqual(got, wantB[i]) {
					t.Errorf("probe %d: response matches neither model (stale or blended result)", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	if t.Failed() {
		return
	}
	if srv.Epoch() == 0 {
		t.Fatal("no swap ever happened; the test raced nothing")
	}

	// phase 2: causality — once a mapped swap returns, the previous
	// model's answers (cached or recomputed) must never surface again
	for round := 0; round < 20; round++ {
		p, want := pathA, wantA
		if round%2 == 0 {
			p, want = pathB, wantB
		}
		path.Store(&p)
		if err := h.Reload(); err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			for pass := 0; pass < 2; pass++ { // miss-then-fill, then a hit
				got, err := srv.Recommend(reqs[i])
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("round %d probe %d pass %d: stale result served after mapped reload", round, i, pass)
				}
			}
		}
	}
	if cs, ok := srv.CacheStats(); !ok || cs.Hits == 0 {
		t.Fatalf("test never exercised the cached path: %+v", cs)
	}
}
