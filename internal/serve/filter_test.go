package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/infer"
)

// Exclude-purchased must drop exactly the user's history and the
// request's recent baskets, and still return K items.
func TestServerExcludePurchased(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m, WithHistory(data))
	user := 3
	recent := data.Users[user].Baskets
	got, err := s.Recommend(Request{User: user, Recent: recent, K: 5, ExcludePurchased: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d items, want 5 (filters apply before the heap)", len(got))
	}
	bought := data.Users[user].ItemSet()
	for _, it := range got {
		if _, ok := bought[int32(it.ID)]; ok {
			t.Fatalf("item %d was already purchased by user %d", it.ID, user)
		}
	}
	// the filtered ranking is the unfiltered ranking minus purchased items
	full, err := s.Recommend(Request{User: user, Recent: recent, K: m.NumItems()})
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for _, it := range full {
		if _, ok := bought[int32(it.ID)]; !ok {
			want = append(want, it.ID)
			if len(want) == 5 {
				break
			}
		}
	}
	for i := range got {
		if got[i].ID != want[i] {
			t.Fatalf("rank %d: got %d, want %d", i, got[i].ID, want[i])
		}
	}
	// without WithHistory only the recent baskets are known
	s2 := New(m)
	got2, err := s2.Recommend(Request{User: user, Recent: recent, K: 5, ExcludePurchased: true})
	if err != nil {
		t.Fatal(err)
	}
	recentSet := map[int]bool{}
	for _, b := range recent {
		for _, it := range b {
			recentSet[int(it)] = true
		}
	}
	for _, it := range got2 {
		if recentSet[it.ID] {
			t.Fatalf("recent item %d leaked through the filter", it.ID)
		}
	}
}

// Category allow/deny lists must restrict results to the requested
// subtrees across every strategy.
func TestServerCategoryFilter(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	tree := m.Tree
	allow := int(tree.Level(1)[0])
	for name, req := range map[string]Request{
		"naive":       {User: 0, K: 4, Categories: []int32{int32(allow)}},
		"diversified": {User: 0, K: 4, MaxPerCategory: 2, Categories: []int32{int32(allow)}},
		"cascade": {User: 0, K: 4, Categories: []int32{int32(allow)},
			Cascade: &infer.CascadeConfig{KeepFrac: []float64{1, 1, 1}}},
	} {
		items, err := s.Recommend(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(items) == 0 {
			t.Fatalf("%s: empty result", name)
		}
		for _, it := range items {
			if tree.AncestorAtDepth(tree.ItemNode(it.ID), 1) != allow {
				t.Fatalf("%s: item %d outside allowed subtree %d", name, it.ID, allow)
			}
		}
	}
	// denying the allowed subtree of a category-constrained request
	// leaves nothing
	items, err := s.Recommend(Request{User: 0, K: 4,
		Categories: []int32{int32(allow)}, ExcludeCategories: []int32{int32(allow)}})
	if err != nil || len(items) != 0 {
		t.Fatalf("allow∩deny: %d items, err %v", len(items), err)
	}
}

// Offset pagination must tile the full ranking without gaps or overlaps.
func TestServerOffsetPagination(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	full, err := s.Recommend(Request{User: 1, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	var paged []int
	for off := 0; off < 15; off += 5 {
		page, err := s.Recommend(Request{User: 1, K: 5, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range page {
			paged = append(paged, it.ID)
		}
	}
	if len(paged) != len(full) {
		t.Fatalf("pages cover %d items, full ranking %d", len(paged), len(full))
	}
	for i := range full {
		if full[i].ID != paged[i] {
			t.Fatalf("rank %d: paged %d, full %d", i, paged[i], full[i].ID)
		}
	}
}

// Every boundary rejection must be a typed *RequestError — the contract
// the HTTP 400 mapping stands on.
func TestServerBoundaryValidation(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	for name, req := range map[string]Request{
		"zero k":          {User: 1, K: 0},
		"negative k":      {User: 1, K: -3},
		"k over catalog":  {User: 1, K: m.NumItems() + 1},
		"negative offset": {User: 1, K: 5, Offset: -1},
		"bad user":        {User: 99999, K: 5},
		"bad recent item": {User: 1, K: 5, Recent: []dataset.Basket{{int32(m.NumItems())}}},
		"bad category":    {User: 1, K: 5, Categories: []int32{int32(m.Tree.NumNodes())}},
		"bad ex category": {User: 1, K: 5, ExcludeCategories: []int32{-1}},
		"bad keep frac":   {User: 1, K: 5, Cascade: &infer.CascadeConfig{KeepFrac: []float64{0.5}}},
		"bad cat depth":   {User: 1, K: 5, MaxPerCategory: 1, CatDepth: 99},
	} {
		_, err := s.Recommend(req)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("%s: error %v is not a *RequestError", name, err)
		}
	}
}

// The HTTP layer must honor the filter knobs as query parameters and JSON
// fields, reject malformed values with 400s, serve the unified plan
// endpoint, and report filter usage in /v1/stats.
func TestHTTPFilterParamsAndPlanEndpoint(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m, WithHistory(data))
	h := NewHTTP(s, nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	// exclude_purchased as a query parameter
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?exclude_purchased=true", `{"user":3,"k":5}`)
	if resp.StatusCode != http.StatusOK || len(out.Items) != 5 {
		t.Fatalf("exclude_purchased: status %d items %d", resp.StatusCode, len(out.Items))
	}
	bought := data.Users[3].ItemSet()
	for _, it := range out.Items {
		if _, ok := bought[int32(it.Item)]; ok {
			t.Fatalf("purchased item %d served", it.Item)
		}
	}

	// category constraint via parameter, offset via JSON
	allow := int(m.Tree.Level(1)[1])
	resp, out = postJSON(t, ts.Client(),
		fmt.Sprintf("%s/v1/recommend/user?category=%d", ts.URL, allow), `{"user":3,"k":3,"offset":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("category param: status %d", resp.StatusCode)
	}
	for _, it := range out.Items {
		if m.Tree.AncestorAtDepth(m.Tree.ItemNode(it.Item), 1) != allow {
			t.Fatalf("item %d outside category %d", it.Item, allow)
		}
	}

	// unified plan endpoint: every strategy spelling
	for _, body := range []string{
		`{"user":3,"k":4}`,
		`{"user":3,"k":4,"strategy":"naive","exclude_purchased":true}`,
		`{"user":3,"k":4,"strategy":"cascade","keep":0.5}`,
		`{"user":3,"k":4,"strategy":"diversified","max_per_category":1}`,
	} {
		resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend", body)
		if resp.StatusCode != http.StatusOK || len(out.Items) == 0 {
			t.Fatalf("plan endpoint %s: status %d items %d", body, resp.StatusCode, len(out.Items))
		}
	}

	// malformed values are client errors
	for name, probe := range map[string]string{
		"bad strategy":        "/v1/recommend",
		"bad offset param":    "/v1/recommend/user?offset=-2",
		"bad category param":  "/v1/recommend/user?category=1,x",
		"bad exclude param":   "/v1/recommend/user?exclude_purchased=maybe",
		"offset in body":      "/v1/recommend/user",
		"category over range": "/v1/recommend/user?category=99999",
	} {
		body := `{"user":3,"k":5}`
		switch name {
		case "bad strategy":
			body = `{"user":3,"k":5,"strategy":"bogus"}`
		case "offset in body":
			body = `{"user":3,"k":5,"offset":-4}`
		}
		resp, err := ts.Client().Post(ts.URL+probe, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// filter usage counters surface in /v1/stats
	st, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inference.Filters.ExcludePurchased < 2 || stats.Inference.Filters.Category < 1 || stats.Inference.Filters.Paged < 1 {
		t.Fatalf("filter counters never moved: %+v", stats.Inference.Filters)
	}
	if stats.Served.Plan != 4 {
		t.Fatalf("plan endpoint counter = %d, want 4", stats.Served.Plan)
	}
}

// Filtered and paged requests must flow through a batching-enabled server
// unharmed: filters sub-group onto the per-request path, offsets ride the
// shared sweep.
func TestBatcherFilteredRequests(t *testing.T) {
	m, data := trainedModel(t)
	serial := New(m, WithHistory(data))
	s := New(m, WithHistory(data), WithWorkers(2))
	defer s.Close()
	b := NewBatcher(s, 4, 2*time.Millisecond)

	reqs := []Request{
		{User: 1, K: 5},
		{User: 2, K: 4, Offset: 3},
		{User: 3, K: 5, ExcludePurchased: true, Recent: data.Users[3].Baskets},
		{User: 4, K: 3, Categories: []int32{m.Tree.Level(1)[0]}},
	}
	results := make([]Response, len(reqs))
	done := make(chan int, len(reqs))
	for i, req := range reqs {
		go func(i int, req Request) {
			items, err := b.Recommend(req)
			results[i] = Response{Items: items, Err: err}
			done <- i
		}(i, req)
	}
	for range reqs {
		<-done
	}
	for i, req := range reqs {
		if results[i].Err != nil {
			t.Fatalf("req %d: %v", i, results[i].Err)
		}
		want, err := serial.Recommend(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, results[i].Items) {
			t.Fatalf("req %d diverged through the batcher:\nwant %v\ngot  %v", i, want, results[i].Items)
		}
	}
}
