package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// The limiter itself: fast-path admission, bounded queueing, and both
// shed flavors — 429 when the queue is full, 503 when the wait expires.
func TestAdmissionLimiter(t *testing.T) {
	a := NewAdmission(1, 1, 5*time.Millisecond)
	ctx := context.Background()

	release, code := a.Acquire(ctx)
	if release == nil {
		t.Fatalf("first acquire shed with %s", code)
	}

	// slot held: a second caller queues, a third finds the queue full
	var wg sync.WaitGroup
	queued := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(queued)
		rel, st := a.Acquire(ctx)
		if rel == nil {
			t.Errorf("queued caller shed with %s", st)
			return
		}
		rel()
	}()
	<-queued
	// wait until the goroutine is actually parked in the queue
	for i := 0; a.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	if rel, st := a.Acquire(ctx); rel != nil || st != api.CodeQueueFull {
		t.Fatalf("queue-full acquire: release=%v code=%s, want queue_full", rel != nil, st)
	}
	release() // queued caller takes the slot
	wg.Wait()

	// hold the slot past the queue wait: the waiter sheds with 503
	release, _ = a.Acquire(ctx)
	if rel, st := a.Acquire(ctx); rel != nil || st != api.CodeOverloaded {
		t.Fatalf("wait-expiry acquire: release=%v code=%s, want overloaded", rel != nil, st)
	}

	// a client hanging up while queued sheds too, but lands in the
	// abandoned counter, not shed_wait_timeout (that one means "a slot
	// never freed in time", and client churn must not inflate it)
	gone, cancel := context.WithCancel(ctx)
	cancel()
	if rel, st := a.Acquire(gone); rel != nil || st != api.CodeOverloaded {
		t.Fatalf("cancelled-ctx acquire: release=%v code=%s, want overloaded", rel != nil, st)
	}
	// a deadline expiring while queued IS slot starvation
	expired, cancel2 := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if rel, st := a.Acquire(expired); rel != nil || st != api.CodeOverloaded {
		t.Fatalf("expired-ctx acquire: release=%v code=%s, want overloaded", rel != nil, st)
	}
	release()

	st := a.Stats()
	if st.ShedQueueFull != 1 || st.ShedWait != 2 || st.QueueAborted != 1 || st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("unexpected admission stats: %+v", st)
	}
}

// The HTTP layer must shed with Retry-After while saturated and serve
// normally once the pressure is gone, without counting sheds as errors.
func TestHTTPAdmissionSheds(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	h := NewHTTP(s, nil)
	h.SetAdmission(1, 0, time.Millisecond)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	// occupy the only slot directly, then hit the endpoint
	h.adm.slots <- struct{}{}
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":1,"k":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	<-h.adm.slots

	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":1,"k":3}`)
	if resp.StatusCode != http.StatusOK || len(out.Items) != 3 {
		t.Fatalf("after release: status %d items %d", resp.StatusCode, len(out.Items))
	}
	if h.errors.Load() != 0 {
		t.Fatalf("sheds were counted as errors: %d", h.errors.Load())
	}
	if h.adm.Stats().ShedQueueFull != 1 {
		t.Fatalf("shed not counted: %+v", h.adm.Stats())
	}
	// /v1/stats itself must never be throttled
	h.adm.slots <- struct{}{}
	sr, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("stats throttled under saturation: %v %v", err, sr)
	}
	sr.Body.Close()
	<-h.adm.slots
}

// A per-request timeout firing mid-request answers 503 + Retry-After —
// never a partial ranking, never a 500 — and is counted in the deadline
// stat.
func TestHTTPTimeoutSheds(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	h := NewHTTP(s, nil)
	h.SetTimeout(time.Nanosecond) // guaranteed to expire before the sweep
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":1,"k":3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline shed missing Retry-After")
	}
	if h.deadlines.Load() == 0 {
		t.Fatal("deadline shed not counted")
	}

	h.SetTimeout(10 * time.Second)
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":1,"k":3}`)
	if resp.StatusCode != http.StatusOK || len(out.Items) != 3 {
		t.Fatalf("generous timeout: status %d items %d", resp.StatusCode, len(out.Items))
	}
}
