package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/model"
	"repro/internal/vecmath"
)

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, api.RecommendResponse) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.RecommendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestHTTPEndpoints(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	h := NewHTTP(s, nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	// user recommendations match the in-process path
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":3,"k":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("user: status %d", resp.StatusCode)
	}
	want, err := s.Recommend(Request{User: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 5 {
		t.Fatalf("user: got %d items", len(out.Items))
	}
	for i := range want {
		if out.Items[i].Item != want[i].ID || out.Items[i].Score != want[i].Score {
			t.Fatalf("user rank %d: %+v vs %+v", i, out.Items[i], want[i])
		}
	}

	// recent baskets round-trip through JSON
	recent, _ := json.Marshal(data.Users[3].Baskets)
	resp, out = postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user",
		fmt.Sprintf(`{"user":3,"recent":%s,"k":4}`, recent))
	if resp.StatusCode != http.StatusOK || len(out.Items) != 4 {
		t.Fatalf("user+recent: status %d items %d", resp.StatusCode, len(out.Items))
	}

	// session ignores any user field
	resp, out = postJSON(t, ts.Client(), ts.URL+"/v1/recommend/session", `{"user":99999,"recent":[[7]],"k":5}`)
	if resp.StatusCode != http.StatusOK || len(out.Items) != 5 {
		t.Fatalf("session: status %d items %d", resp.StatusCode, len(out.Items))
	}

	// full-keep cascade equals the naive user ranking
	resp, out = postJSON(t, ts.Client(), ts.URL+"/v1/recommend/cascade", `{"user":3,"k":5,"keep":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cascade: status %d", resp.StatusCode)
	}
	for i := range want {
		if out.Items[i].Item != want[i].ID {
			t.Fatalf("cascade rank %d: %d vs %d", i, out.Items[i].Item, want[i].ID)
		}
	}

	// diversified respects the quota
	resp, out = postJSON(t, ts.Client(), ts.URL+"/v1/recommend/diversified", `{"user":3,"k":5,"max_per_category":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diversified: status %d", resp.StatusCode)
	}
	seen := map[int]bool{}
	for _, it := range out.Items {
		cat := m.Tree.AncestorAtDepth(m.Tree.ItemNode(it.Item), m.Tree.Depth()-1)
		if seen[cat] {
			t.Fatal("diversified repeated a category")
		}
		seen[cat] = true
	}
}

func TestHTTPErrors(t *testing.T) {
	m, _ := trainedModel(t)
	h := NewHTTP(New(m), nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	for name, probe := range map[string]struct{ path, body string }{
		"bad json":       {"/v1/recommend/user", `{"user":`},
		"bad user":       {"/v1/recommend/user", `{"user":99999,"k":5}`},
		"zero k":         {"/v1/recommend/user", `{"user":1}`},
		"cascade nokeep": {"/v1/recommend/cascade", `{"user":1,"k":5}`},
		"div noquota":    {"/v1/recommend/diversified", `{"user":1,"k":5}`},
	} {
		resp, _ := postJSON(t, ts.Client(), ts.URL+probe.path, probe.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	var st statsResponse
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served.Errors != 5 {
		t.Fatalf("errors counter = %d, want 5", st.Served.Errors)
	}
}

func TestHTTPStats(t *testing.T) {
	m, _ := trainedModel(t)
	h := NewHTTP(New(m), nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user", `{"user":1,"k":3}`)
	postJSON(t, ts.Client(), ts.URL+"/v1/recommend/session", `{"recent":[[2]],"k":3}`)

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Model.Items != m.Tree.NumItems() || st.Model.K != m.P.K || st.Model.Depth != m.Tree.Depth() {
		t.Fatalf("stats model block wrong: %+v", st.Model)
	}
	if st.Served.User != 1 || st.Served.Session != 1 {
		t.Fatalf("stats counters wrong: %+v", st.Served)
	}
	// the kernels section must mirror the process-wide vecmath dispatch
	ks := vecmath.Kernels()
	if st.Inference.Kernels.Arch != ks.Arch {
		t.Fatalf("stats kernels arch = %q, want %q", st.Inference.Kernels.Arch, ks.Arch)
	}
	if len(st.Inference.Kernels.Ops) == 0 {
		t.Fatalf("stats kernels ops missing: %+v", st.Inference.Kernels)
	}
	for op, impl := range ks.Ops {
		if st.Inference.Kernels.Ops[op] != impl {
			t.Fatalf("stats kernels op %s = %q, want %q", op, st.Inference.Kernels.Ops[op], impl)
		}
	}

	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
}

// TestHTTPHotSwap hammers the service with requests while the model is
// hot-swapped via Reload: no request may fail or observe a torn snapshot.
func TestHTTPHotSwap(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	reloaded := 0
	h := NewHTTP(s, func() (*model.TF, error) {
		reloaded++
		return m, nil
	})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"user":%d,"k":3}`, (w*13+i)%data.NumUsers())
				resp, err := ts.Client().Post(ts.URL+"/v1/recommend/user", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("in-flight request failed during hot swap: %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		if err := h.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if reloaded != 10 || h.reloads.Load() != 10 {
		t.Fatalf("reloads = %d / counter %d, want 10", reloaded, h.reloads.Load())
	}

	// a reload source failure must not disturb the serving snapshot
	h2 := NewHTTP(s, func() (*model.TF, error) { return nil, fmt.Errorf("boom") })
	if err := h2.Reload(); err == nil {
		t.Fatal("expected reload error")
	}
	if _, err := s.Recommend(Request{User: 0, K: 3}); err != nil {
		t.Fatal(err)
	}
}

// The ?workers= knob and a batching-enabled server must serve the same
// rankings as the plain serial HTTP path.
func TestHTTPWorkersKnobAndBatching(t *testing.T) {
	m, _ := trainedModel(t)
	serial := New(m)
	s := New(m, WithWorkers(3))
	defer s.Close()
	h := NewHTTP(s, nil)
	h.EnableBatching(4, time.Millisecond)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	want, err := serial.Recommend(Request{User: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"", "?workers=0", "?workers=1", "?workers=2"} {
		resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user"+suffix, `{"user":3,"k":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d", suffix, resp.StatusCode)
		}
		if len(out.Items) != len(want) {
			t.Fatalf("%q: got %d items, want %d", suffix, len(out.Items), len(want))
		}
		for i := range want {
			if out.Items[i].Item != want[i].ID || out.Items[i].Score != want[i].Score {
				t.Fatalf("%q: item %d = %+v, want %+v", suffix, i, out.Items[i], want[i])
			}
		}
	}
	// cascaded requests bypass the batcher but honor the pool
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/cascade?workers=2", `{"user":3,"k":5,"keep":0.6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cascade with workers: status %d", resp.StatusCode)
	}
	// malformed knob is a client error
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?workers=lots", `{"user":3,"k":5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workers value: status %d, want 400", resp.StatusCode)
	}
	// stats reflect the inference configuration
	st, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inference.PoolWorkers != 3 || !stats.Inference.Batching {
		t.Fatalf("stats.Inference = %+v, want 3 workers with batching", stats.Inference)
	}
	if stats.Inference.Batches == 0 || stats.Inference.BatchedReqs == 0 {
		t.Fatalf("batching counters never moved: %+v", stats.Inference)
	}
}
