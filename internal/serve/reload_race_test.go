package serve

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// secondModel derives a distinguishably different model from the shared
// test world by training further epochs on a copy of the data.
func secondModel(t *testing.T, m *model.TF) *model.TF {
	t.Helper()
	_, data := trainedModel(t)
	tc := train.DefaultConfig()
	tc.Epochs = 6
	tc.Seed = 977
	if _, err := train.Train(m, data, tc); err != nil {
		t.Fatal(err)
	}
	return m
}

// Hammer Reload (the SIGHUP hot-swap path) concurrently with cached and
// uncached requests. Every response must be byte-identical to one of the
// two models' direct rankings — never a blend, never a partial ranking —
// and once a Reload has returned, requests must never again see the
// pre-reload model's result for a cached key (no stale-epoch serving).
func TestReloadRaceNoStaleResults(t *testing.T) {
	mA, _ := trainedModel(t)
	mB, _ := trainedModel(t)
	mB = secondModel(t, mB)

	probes := []string{
		`{"user":1,"k":5}`,
		`{"user":2,"k":5}`,
		`{"user":3,"k":5,"exclude_categories":[2]}`,
		`{"user":4,"k":4,"strategy":"diversified","max_per_category":2}`,
	}
	reqs := []Request{
		{User: 1, K: 5},
		{User: 2, K: 5},
		{User: 3, K: 5, ExcludeCategories: []int32{2}},
		{User: 4, K: 4, MaxPerCategory: 2},
	}
	plainA, plainB := New(mA), New(mB)
	wantA := make([][]vecmath.Scored, len(reqs))
	wantB := make([][]vecmath.Scored, len(reqs))
	distinct := false
	for i, r := range reqs {
		var err error
		if wantA[i], err = plainA.Recommend(r); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = plainB.Recommend(r); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantA[i], wantB[i]) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("test models are indistinguishable; the race assertions would be vacuous")
	}

	var current atomic.Pointer[model.TF]
	current.Store(mA)
	srv := New(mA, WithCache(64), WithWorkers(2))
	defer srv.Close()
	h := NewHTTP(srv, func() (*model.TF, error) { return current.Load(), nil })
	h.EnableBatching(8, 200*time.Microsecond)
	defer h.Close()
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	fetch := func(i int) []vecmath.Scored {
		resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/recommend", probes[i])
		if resp.StatusCode != http.StatusOK {
			t.Errorf("probe %d: status %d", i, resp.StatusCode)
			return nil
		}
		items := make([]vecmath.Scored, len(out.Items))
		for j, it := range out.Items {
			items[j] = vecmath.Scored{ID: it.Item, Score: it.Score}
		}
		return items
	}

	// phase 1: concurrent hammer — every answer is exactly A's or B's
	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			if flip {
				current.Store(mB)
			} else {
				current.Store(mA)
			}
			flip = !flip
			if err := h.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 150; iter++ {
				// repeat keys often so the cached path is genuinely hot
				i := (w + iter) % len(probes)
				if iter%3 == 0 {
					i = 0
				}
				got := fetch(i)
				if got == nil {
					return
				}
				if !reflect.DeepEqual(got, wantA[i]) && !reflect.DeepEqual(got, wantB[i]) {
					t.Errorf("probe %d: response matches neither model (stale or blended result)", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	if t.Failed() {
		return
	}

	// phase 2: causality — after Reload returns, the old model's answer
	// (cached or not) must never surface again
	for round := 0; round < 30; round++ {
		m, want := mA, wantA
		if round%2 == 0 {
			m, want = mB, wantB
		}
		current.Store(m)
		if err := h.Reload(); err != nil {
			t.Fatal(err)
		}
		for i := range probes {
			// twice: a miss-then-fill pass and a guaranteed cache hit
			for pass := 0; pass < 2; pass++ {
				if got := fetch(i); !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("round %d probe %d pass %d: stale-epoch result served after Reload", round, i, pass)
				}
			}
		}
	}
	if cs, ok := srv.CacheStats(); !ok || cs.Hits == 0 || cs.Stale == 0 {
		cs, _ := srv.CacheStats()
		t.Fatalf("test never exercised the cached path properly: %+v", cs)
	}
}
