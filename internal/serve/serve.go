// Package serve wraps a trained TF model in a concurrency-safe
// recommendation service: requests run against an immutable composed
// snapshot, and a retrained model can be swapped in atomically without
// blocking in-flight requests — the deployment shape a recommender needs
// when training (§6.1) runs continuously beside serving (§5).
//
// A Request is translated into exactly one infer.Plan and executed by the
// plan executor; strategy, precision, worker cap, result page and item
// filters are all plan fields, so the serving layer carries no per-shape
// dispatch of its own.
package serve

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// RequestError marks a client-side request validation failure. The HTTP
// layer renders it (and only it) as a 400; anything else escaping the
// executor is a server fault.
type RequestError struct{ msg string }

// Error returns the client-facing validation message.
func (e *RequestError) Error() string { return e.msg }

// badRequestf builds a RequestError with the package's error prefix.
func badRequestf(format string, args ...any) *RequestError {
	return &RequestError{msg: "serve: " + fmt.Sprintf(format, args...)}
}

// snapshotRef pairs a servable snapshot with the reference count guarding
// its backing memory. A memory-mapped snapshot (model.LoadFile) is only
// unmapped when the last request pinned to it finishes — the owner
// reference held by the Server plus one reference per in-flight pin — so
// a hot swap never pulls mapped slabs out from under a sweep.
type snapshotRef struct {
	c  *model.Composed
	sn *model.Snapshot // nil when composed in-process from a *TF
	// gen is the snapshot's generation: 0 for the construction snapshot,
	// then the swap counter's value when this ref was installed. Stamped
	// into responses as their "epoch" — a request reports the generation
	// it actually ran on, not whatever the counter says at write time.
	gen uint64

	refs      atomic.Int64 // starts at 1: the Server's owner reference
	closeOnce sync.Once
}

func newSnapshotRef(c *model.Composed, sn *model.Snapshot) *snapshotRef {
	r := &snapshotRef{c: c, sn: sn}
	r.refs.Store(1)
	return r
}

// release drops one reference; the last one out closes the backing
// snapshot (unmapping it, for a mapped model). closeOnce keeps a stray
// extra release from double-closing.
func (r *snapshotRef) release() {
	if r.refs.Add(-1) == 0 && r.sn != nil {
		r.closeOnce.Do(func() { r.sn.Close() })
	}
}

// Server answers recommendation queries from the latest model snapshot.
// All methods are safe for concurrent use.
type Server struct {
	snap atomic.Pointer[snapshotRef]
	// gen counts snapshot generations: 0 for the construction snapshot,
	// +1 per Update/UpdateSnapshot. Logged by tfrec-serve on every load.
	gen  atomic.Uint64
	pool sync.Pool // *[]float64 query buffers, length-checked per use
	// sweep, when non-nil, is the sharded parallel inference pool; single
	// requests fan their catalog sweep across it and batches use it for
	// the multi-query sweep. Nil means every request runs serial.
	sweep *infer.Pool
	// prec is the server-level precision choice (WithPrecision).
	// PrecisionDefault defers to the snapshot's recorded preference and
	// finally to the build default, the two-stage f32 pipeline.
	prec model.Precision
	// pruned makes branch-and-bound retrieval the default for naive
	// request sweeps (WithPruned); individual requests can still opt in
	// via Request.Pruned when the server default is off.
	pruned bool
	// purchased[user] lists the distinct items of the user's recorded
	// purchase history (WithHistory); exclude-purchased filters are built
	// from it plus the request's Recent baskets.
	purchased [][]int32
	// cache, when non-nil, is the versioned LRU result cache (WithCache):
	// finished rankings keyed by canonicalized request, stamped with the
	// model epoch, invalidated wholesale by Update's epoch bump. Hits
	// skip the sweep entirely.
	cache *resultCache
	// rangeLo/rangeHi, when rangeHi > rangeLo, scope every request to the
	// catalog slice [rangeLo, rangeHi) — shard mode (WithItemRange). The
	// full model is loaded either way; the range is an eligibility mask
	// intersected into each request's plan filter.
	rangeLo, rangeHi int

	// filter usage counters, surfaced via FilterStats and /v1/stats.
	filterExcluded atomic.Int64
	filterCategory atomic.Int64
	filterPaged    atomic.Int64
}

// Option configures a Server at construction.
type Option func(*Server)

// WithWorkers gives the server a sharded parallel inference pool of the
// given total parallelism (0 = GOMAXPROCS). A value of 1 keeps all
// request sweeps serial — the pre-pool behavior.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n == 1 {
			return
		}
		s.sweep = infer.NewPool(n)
	}
}

// WithPrecision pins the server's scoring precision, overriding the
// model's recorded preference. model.PrecisionF32 (the default when
// nothing chooses) runs the two-stage f32-sweep + exact-f64-rescore
// pipeline; model.PrecisionF64 forces the pure float64 sweep. Rankings
// are byte-identical either way; the knob trades sweep bandwidth against
// the (rare) escalation re-sweeps of near-tie score regimes.
func WithPrecision(p model.Precision) Option {
	return func(s *Server) { s.prec = p }
}

// WithPruned makes taxonomy-guided branch-and-bound retrieval the default
// for naive request sweeps. Rankings stay byte-identical to the dense
// sweep — the engine only skips subtrees its bound certificates prove
// cannot place an item — so the option is purely a performance default:
// worth turning on when the catalog's score mass concentrates in few
// subtrees, near-free (a bounded ~5% overhead) when it does not. Pruned
// requests bypass the batcher's shared multi-query sweep, so the option
// also shifts load from coalesced throughput to per-request latency.
func WithPruned(on bool) Option {
	return func(s *Server) { s.pruned = on }
}

// WithHistory supplies the purchase log backing exclude-purchased
// filtering: a request with ExcludePurchased drops every item of the
// user's recorded history plus the request's Recent baskets. Without this
// option only the Recent baskets are known (session traffic works the
// same way). The log is snapshotted at construction; it is filter
// metadata, not model state, so Update does not touch it.
func WithHistory(d *dataset.Dataset) Option {
	return func(s *Server) {
		purchased := make([][]int32, d.NumUsers())
		for u := range d.Users {
			set := d.Users[u].ItemSet()
			items := make([]int32, 0, len(set))
			for it := range set {
				items = append(items, it)
			}
			slices.Sort(items)
			purchased[u] = items
		}
		s.purchased = purchased
	}
}

// WithCache gives the server a versioned LRU result cache holding up to
// n finished rankings (n <= 0 disables caching, the default). Entries
// are keyed by the request's canonical identity — user, recent baskets,
// strategy config, filters, page — and stamped with the model epoch;
// Update bumps the epoch atomically, so a hot swap invalidates every
// cached ranking at once without blocking readers. A hit returns the
// stored ranking (shared, read-only) without touching the sweep pool.
func WithCache(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.cache = newResultCache(n)
		}
	}
}

// WithItemRange scopes the server to the half-open catalog slice
// [lo, hi) — the shard-scoped serving mode behind a scatter-gather
// router. The server still loads the whole model (queries need the full
// taxonomy and factor slabs), but every ranking only considers items in
// the range: the range is compiled into each request's eligibility mask,
// so it composes with category filters, exclusions, pagination and every
// strategy/precision/pruning combination, and the adaptive masked sweep
// skips out-of-range blocks cheaply. hi <= lo disables (the default,
// full catalog). The range is validated against the snapshot at request
// time; cmd/tfrec-serve also checks it at startup.
func WithItemRange(lo, hi int) Option {
	return func(s *Server) { s.rangeLo, s.rangeHi = lo, hi }
}

// New builds a server from a trained model (the model is snapshotted; the
// caller may keep training it and call Update later).
func New(m *model.TF, opts ...Option) *Server {
	s := &Server{}
	s.snap.Store(newSnapshotRef(m.Compose(), nil))
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// NewSnapshot builds a server directly from a loaded snapshot — the
// zero-Compose serving path for memory-mapped v4 model files
// (model.LoadFile). The server takes ownership: the snapshot is closed
// when it is swapped out (UpdateSnapshot) and no request still pins it,
// or at Close.
func NewSnapshot(sn *model.Snapshot, opts ...Option) *Server {
	s := &Server{}
	s.snap.Store(newSnapshotRef(sn.Composed, sn))
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Close releases the server's inference pool, if any, and drops the owner
// reference on the current snapshot (unmapping a mapped model once no
// request still pins it). Call once; must not race with new requests.
func (s *Server) Close() {
	s.sweep.Close()
	s.snap.Load().release()
}

// Pool exposes the server's inference pool (nil when serving serially).
func (s *Server) Pool() *infer.Pool { return s.sweep }

// Precision returns the resolved default precision for the current
// snapshot — what a request with no override runs at.
func (s *Server) Precision() model.Precision {
	r := s.acquire()
	defer r.release()
	return s.effectivePrecision(r.c, Request{})
}

// ranged reports whether the server is shard-scoped (WithItemRange).
func (s *Server) ranged() bool { return s.rangeHi > s.rangeLo }

// ItemRange reports the shard scope; ok is false on a full-catalog
// server.
func (s *Server) ItemRange() (lo, hi int, ok bool) {
	return s.rangeLo, s.rangeHi, s.ranged()
}

// FilterStats reports how many served requests used each filter
// capability: exclude-purchased, category allow/deny lists, and non-zero
// pagination offsets.
func (s *Server) FilterStats() (excludePurchased, category, paged int64) {
	return s.filterExcluded.Load(), s.filterCategory.Load(), s.filterPaged.Load()
}

// Update atomically swaps in a fresh snapshot of the (re)trained model.
// In-flight requests finish on the old snapshot.
func (s *Server) Update(m *model.TF) {
	s.swap(newSnapshotRef(m.Compose(), nil))
}

// UpdateSnapshot atomically swaps in a loaded snapshot (typically a
// freshly memory-mapped v4 file). In-flight requests finish on the old
// snapshot; the old snapshot's backing memory is released — unmapped,
// for a mapped model — only after the last request pinned to it drains.
// The server takes ownership of sn.
func (s *Server) UpdateSnapshot(sn *model.Snapshot) {
	s.swap(newSnapshotRef(sn.Composed, sn))
}

// swap installs a new snapshot reference. The snapshot is stored BEFORE
// the cache epoch is bumped: a request pinning the new epoch is then
// guaranteed to load the new snapshot, so a result computed on the old
// model can never be stamped current (see resultCache). The old owner
// reference is dropped last, after the swap, so acquire's re-check
// ordering holds (see acquire).
func (s *Server) swap(r *snapshotRef) {
	// the ref's generation is assigned before the pointer is published, so
	// a pin can never observe a ref with a stale gen
	r.gen = s.gen.Add(1)
	old := s.snap.Swap(r)
	if s.cache != nil {
		s.cache.BumpEpoch()
	}
	old.release()
}

// Epoch reports the snapshot generation counter: 0 for the snapshot the
// server was built with, +1 per hot swap. For startup/reload logging.
func (s *Server) Epoch() uint64 { return s.gen.Load() }

// SnapshotInfo reports the live snapshot's provenance: the model file
// format version it was loaded from (-1 when it was composed in-process
// from a *TF, 0 for a legacy headerless gob file) and whether its slabs
// are memory-mapped.
func (s *Server) SnapshotInfo() (format int, mapped bool) {
	r := s.acquire()
	defer r.release()
	if r.sn == nil {
		return -1, false
	}
	return r.sn.Format, r.sn.Mapped
}

// acquire takes a reference on the current snapshot. The re-check makes
// the count race-free against swap: if the pointer still equals r after
// our increment, the owner reference had not yet been released when we
// incremented (swap stores the new pointer before releasing the old
// owner), so the count was ≥ 2 and the snapshot cannot close under us.
// If the pointer moved, our increment may have hit an already-closed
// ref — harmless, the struct is heap-managed — and we retry on the new
// one.
func (s *Server) acquire() *snapshotRef {
	for {
		r := s.snap.Load()
		r.refs.Add(1)
		if s.snap.Load() == r {
			return r
		}
		r.release()
	}
}

// pin captures the (epoch, snapshot) pair one request runs under,
// holding a reference the caller must release. The epoch is read before
// the snapshot — the ordering swap's store/bump sequence pairs with; see
// resultCache for the two-sided argument.
func (s *Server) pin() (uint64, *snapshotRef) {
	var epoch uint64
	if s.cache != nil {
		epoch = s.cache.Epoch()
	}
	return epoch, s.acquire()
}

// CacheStats reports the result cache's counters; ok is false when the
// server was built without a cache.
func (s *Server) CacheStats() (CacheStats, bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// Snapshot returns the current composed snapshot (for metrics endpoints
// and tests). It is an unguarded peek: the returned snapshot may be
// swapped out and — if memory-mapped — closed at any time; request paths
// use pin/release instead.
func (s *Server) Snapshot() *model.Composed {
	return s.snap.Load().c
}

// getBuf returns a query buffer of length k, recycling across requests.
func (s *Server) getBuf(k int) []float64 {
	if v := s.pool.Get(); v != nil {
		buf := *(v.(*[]float64))
		if len(buf) == k {
			return buf
		}
	}
	return make([]float64, k)
}

func (s *Server) putBuf(buf []float64) {
	s.pool.Put(&buf)
}

// Request is one recommendation query. Recent lists the user's latest
// baskets most-recent first (drives the short-term Markov term); K is the
// result size. Session requests (no known user) set User to -1.
type Request struct {
	User   int
	Recent []dataset.Basket
	K      int
	// Offset skips the first Offset ranked items — pagination. K items
	// are still returned (filters and ranking apply before the page cut).
	Offset int
	// Cascade, when non-nil, uses §5.1 cascaded inference instead of the
	// full scan.
	Cascade *infer.CascadeConfig
	// MaxPerCategory > 0 diversifies the result (at CatDepth, default the
	// lowest category level).
	MaxPerCategory int
	CatDepth       int
	// ExcludePurchased drops every item the user is known to have bought:
	// the recorded history (WithHistory) plus this request's Recent
	// baskets.
	ExcludePurchased bool
	// Categories, when non-empty, restricts results to items under these
	// taxonomy nodes (union); ExcludeCategories removes items under its
	// nodes.
	Categories        []int32
	ExcludeCategories []int32
	// Workers caps this request's share of the server's inference pool:
	// 0 uses the whole pool, 1 forces the serial sweep, n > 1 fans out to
	// at most n participants. Ignored when the server has no pool.
	Workers int
	// Precision overrides the scoring pipeline for this request;
	// model.PrecisionDefault defers to the server and then the snapshot.
	Precision model.Precision
	// Pruned turns on taxonomy-guided branch-and-bound retrieval for this
	// request's catalog sweep. Rankings are byte-identical to the dense
	// sweep (the bound certificates guarantee it), so the knob only trades
	// execution shape: sublinear on skew-friendly catalogs, a bounded ~5%
	// overhead when the bounds cannot prune. Applies to naive sweeps only
	// (cascaded and diversified shapes walk the taxonomy themselves) and
	// opts the request out of the batcher's shared multi-query sweep.
	Pruned bool
}

// hasFilter reports whether the request carries any item filter — the
// requests the coalesced batch sweep cannot share.
func (r Request) hasFilter() bool {
	return r.ExcludePurchased || len(r.Categories) > 0 || len(r.ExcludeCategories) > 0
}

// effectivePrecision resolves one request's scoring pipeline: request
// override, then the server-level WithPrecision choice, then the
// snapshot's recorded preference, bottoming out at the f32 default.
func (s *Server) effectivePrecision(c *model.Composed, req Request) model.Precision {
	for _, p := range [...]model.Precision{req.Precision, s.prec, c.Precision} {
		if p != model.PrecisionDefault {
			return p
		}
	}
	return model.PrecisionDefault.Resolve()
}

// validate checks a request against the snapshot. Every rejection is a
// *RequestError, which the HTTP layer maps to a 400; request shapes that
// previously fell through to panics (out-of-range basket items) or
// silent clamps (k beyond the catalog) are rejected here.
func (r Request) validate(c *model.Composed) error {
	if r.K <= 0 {
		return badRequestf("K must be positive, got %d", r.K)
	}
	if n := c.NumItems(); r.K > n {
		return badRequestf("K %d exceeds the catalog size %d", r.K, n)
	}
	if r.Offset < 0 {
		return badRequestf("offset must be non-negative, got %d", r.Offset)
	}
	if n := c.NumItems(); r.Offset > n {
		// an offset past the catalog can only yield an empty page, and an
		// unbounded one would size a K+Offset heap — reject it at the
		// boundary so a single request cannot demand a giant allocation
		return badRequestf("offset %d beyond the catalog size %d", r.Offset, n)
	}
	if r.User != -1 && (r.User < 0 || r.User >= c.User.Rows()) {
		return badRequestf("user %d out of range [0,%d)", r.User, c.User.Rows())
	}
	if r.User == -1 && c.P.MarkovOrder == 0 {
		return badRequestf("session requests need a model with MarkovOrder > 0")
	}
	for _, b := range r.Recent {
		for _, item := range b {
			if item < 0 || int(item) >= c.NumItems() {
				return badRequestf("recent basket item %d out of range [0,%d)", item, c.NumItems())
			}
		}
	}
	numNodes := c.Tree.NumNodes()
	for _, node := range r.Categories {
		if node < 0 || int(node) >= numNodes {
			return badRequestf("category node %d out of range [0,%d)", node, numNodes)
		}
	}
	for _, node := range r.ExcludeCategories {
		if node < 0 || int(node) >= numNodes {
			return badRequestf("exclude_category node %d out of range [0,%d)", node, numNodes)
		}
	}
	return nil
}

// filterFor translates the request's filter fields into the plan filter,
// or nil when the request filters nothing.
func (s *Server) filterFor(req Request) *infer.Filter {
	if !req.hasFilter() && !s.ranged() {
		return nil
	}
	f := &infer.Filter{
		AllowNodes: req.Categories, DenyNodes: req.ExcludeCategories,
		RangeLo: s.rangeLo, RangeHi: s.rangeHi,
	}
	if req.ExcludePurchased {
		if req.User >= 0 && req.User < len(s.purchased) {
			f.ExcludeItems = append(f.ExcludeItems, s.purchased[req.User]...)
		}
		for _, b := range req.Recent {
			f.ExcludeItems = append(f.ExcludeItems, b...)
		}
	}
	return f
}

// planFor translates a validated request into its query plan.
func (s *Server) planFor(c *model.Composed, req Request) infer.Plan {
	pl := infer.Plan{
		K:          req.K,
		Offset:     req.Offset,
		MaxWorkers: req.Workers,
		Precision:  s.effectivePrecision(c, req),
		Filter:     s.filterFor(req),
	}
	switch {
	case req.Cascade != nil:
		pl.Strategy = infer.StrategyCascade
		pl.Cascade = req.Cascade
	case req.MaxPerCategory > 0:
		pl.Strategy = infer.StrategyDiversified
		pl.Diversify = &infer.Diversify{MaxPerCategory: req.MaxPerCategory, CatDepth: req.CatDepth}
	default:
		// pruning only shapes the naive sweep; a cascaded or diversified
		// request silently ignores the knob rather than failing validation,
		// since those strategies already walk the taxonomy
		pl.Pruned = req.Pruned || s.pruned
	}
	return pl
}

// countFilters bumps the filter usage counters for one served request.
func (s *Server) countFilters(req Request) {
	if req.ExcludePurchased {
		s.filterExcluded.Add(1)
	}
	if len(req.Categories) > 0 || len(req.ExcludeCategories) > 0 {
		s.filterCategory.Add(1)
	}
	if req.Offset > 0 {
		s.filterPaged.Add(1)
	}
}

// Recommend executes one request against the current snapshot.
func (s *Server) Recommend(req Request) ([]vecmath.Scored, error) {
	return s.RecommendContext(context.Background(), req)
}

// RecommendContext is Recommend under a context: a deadline or
// cancellation firing mid-sweep abandons the query at the next shard
// boundary and returns infer.ErrDeadline — never a partial ranking.
func (s *Server) RecommendContext(ctx context.Context, req Request) ([]vecmath.Scored, error) {
	epoch, ref := s.pin()
	defer ref.release()
	resp := s.run(ctx, epoch, ref.c, req)
	return resp.Items, resp.Err
}

// cached returns the ranking cached for req under the pinned epoch, if
// any. The HTTP layer probes this before handing a request to the
// batcher, so hot requests skip both the batch window and the sweep.
func (s *Server) cached(epoch uint64, req Request) ([]vecmath.Scored, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.Get(epoch, cacheKey(&req))
}

// run executes one request against a pinned (epoch, snapshot) pair with
// a pooled query buffer. It is the single dispatch point shared by
// Recommend, Batch and the batcher's per-request fallthrough:
// request → cache lookup → plan → Execute → cache fill.
func (s *Server) run(ctx context.Context, epoch uint64, c *model.Composed, req Request) Response {
	if err := req.validate(c); err != nil {
		return Response{Err: err}
	}
	s.countFilters(req)
	var key string
	if s.cache != nil {
		key = cacheKey(&req)
		if items, ok := s.cache.Get(epoch, key); ok {
			return Response{Items: items, Cached: true}
		}
	}
	q := s.getBuf(c.K())
	defer s.putBuf(q)
	if req.User == -1 {
		c.BuildSessionQueryInto(req.Recent, q)
	} else {
		c.BuildQueryInto(req.User, req.Recent, q)
	}
	res, err := s.sweep.Execute(ctx, c, q, s.planFor(c, req))
	if err != nil {
		// a fired deadline is the caller's budget running out, not a bad
		// request: pass it through typed so the HTTP layer sheds (503)
		// instead of blaming the client
		if errors.Is(err, infer.ErrDeadline) {
			return Response{Err: err}
		}
		// other Execute errors are plan validation failures by contract,
		// and the plan is built from the request — so a rejection (bad
		// keep fractions, impossible category depth) is a client error
		return Response{Err: &RequestError{msg: err.Error()}}
	}
	if s.cache != nil {
		s.cache.Put(epoch, key, res.Items)
	}
	return Response{Items: res.Items}
}

// Response pairs a request's result with its error. Cached reports that
// Items came from the result cache (and is shared — read-only).
type Response struct {
	Items  []vecmath.Scored
	Err    error
	Cached bool
}

// Batch executes requests concurrently across workers goroutines
// (<=0 uses one per request up to 16) against a single consistent
// snapshot. Query buffers come from the server's pool, so a steady batch
// load allocates no per-request scratch.
func (s *Server) Batch(reqs []Request, workers int) []Response {
	if workers <= 0 {
		workers = len(reqs)
		if workers > 16 {
			workers = 16
		}
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// pin one snapshot for the whole batch so results are mutually
	// consistent even if Update races
	epoch, ref := s.pin()
	defer ref.release()
	c := ref.c
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(reqs); i += workers {
				out[i] = s.run(context.Background(), epoch, c, reqs[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}
