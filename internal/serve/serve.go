// Package serve wraps a trained TF model in a concurrency-safe
// recommendation service: requests run against an immutable composed
// snapshot, and a retrained model can be swapped in atomically without
// blocking in-flight requests — the deployment shape a recommender needs
// when training (§6.1) runs continuously beside serving (§5).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// Server answers recommendation queries from the latest model snapshot.
// All methods are safe for concurrent use.
type Server struct {
	snap atomic.Pointer[model.Composed]
	pool sync.Pool // *[]float64 query buffers, length-checked per use
	// sweep, when non-nil, is the sharded parallel inference pool; single
	// requests fan their catalog sweep across it and batches use it for
	// the multi-query sweep. Nil means every request runs serial.
	sweep *infer.Pool
	// prec is the server-level precision choice (WithPrecision).
	// PrecisionDefault defers to the snapshot's recorded preference and
	// finally to the build default, the two-stage f32 pipeline.
	prec model.Precision
}

// Option configures a Server at construction.
type Option func(*Server)

// WithWorkers gives the server a sharded parallel inference pool of the
// given total parallelism (0 = GOMAXPROCS). A value of 1 keeps all
// request sweeps serial — the pre-pool behavior.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n == 1 {
			return
		}
		s.sweep = infer.NewPool(n)
	}
}

// WithPrecision pins the server's scoring precision, overriding the
// model's recorded preference. model.PrecisionF32 (the default when
// nothing chooses) runs the two-stage f32-sweep + exact-f64-rescore
// pipeline; model.PrecisionF64 forces the pure float64 sweep. Rankings
// are byte-identical either way; the knob trades sweep bandwidth against
// the (rare) escalation re-sweeps of near-tie score regimes.
func WithPrecision(p model.Precision) Option {
	return func(s *Server) { s.prec = p }
}

// New builds a server from a trained model (the model is snapshotted; the
// caller may keep training it and call Update later).
func New(m *model.TF, opts ...Option) *Server {
	s := &Server{}
	s.snap.Store(m.Compose())
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Close releases the server's inference pool, if any. Safe to call on a
// server built without one; must not race with in-flight requests.
func (s *Server) Close() {
	s.sweep.Close()
}

// Pool exposes the server's inference pool (nil when serving serially).
func (s *Server) Pool() *infer.Pool { return s.sweep }

// Precision returns the resolved default precision for the current
// snapshot — what a request with no override runs at.
func (s *Server) Precision() model.Precision {
	return s.effectivePrecision(s.snap.Load(), Request{})
}

// Update atomically swaps in a fresh snapshot of the (re)trained model.
// In-flight requests finish on the old snapshot.
func (s *Server) Update(m *model.TF) {
	s.snap.Store(m.Compose())
}

// Snapshot returns the current composed snapshot (for metrics endpoints
// and tests).
func (s *Server) Snapshot() *model.Composed {
	return s.snap.Load()
}

// getBuf returns a query buffer of length k, recycling across requests.
func (s *Server) getBuf(k int) []float64 {
	if v := s.pool.Get(); v != nil {
		buf := *(v.(*[]float64))
		if len(buf) == k {
			return buf
		}
	}
	return make([]float64, k)
}

func (s *Server) putBuf(buf []float64) {
	s.pool.Put(&buf)
}

// Request is one recommendation query. Recent lists the user's latest
// baskets most-recent first (drives the short-term Markov term); K is the
// result size. Session requests (no known user) set User to -1.
type Request struct {
	User   int
	Recent []dataset.Basket
	K      int
	// Cascade, when non-nil, uses §5.1 cascaded inference instead of the
	// full scan.
	Cascade *infer.CascadeConfig
	// MaxPerCategory > 0 diversifies the result (at CatDepth, default the
	// lowest category level).
	MaxPerCategory int
	CatDepth       int
	// Workers caps this request's share of the server's inference pool:
	// 0 uses the whole pool, 1 forces the serial sweep, n > 1 fans out to
	// at most n participants. Ignored when the server has no pool.
	Workers int
	// Precision overrides the scoring pipeline for this request;
	// model.PrecisionDefault defers to the server and then the snapshot.
	Precision model.Precision
}

// effectivePrecision resolves one request's scoring pipeline: request
// override, then the server-level WithPrecision choice, then the
// snapshot's recorded preference, bottoming out at the f32 default.
func (s *Server) effectivePrecision(c *model.Composed, req Request) model.Precision {
	for _, p := range [...]model.Precision{req.Precision, s.prec, c.Precision} {
		if p != model.PrecisionDefault {
			return p
		}
	}
	return model.PrecisionDefault.Resolve()
}

// Validate checks a request against the snapshot.
func (r Request) validate(c *model.Composed) error {
	if r.K <= 0 {
		return fmt.Errorf("serve: K must be positive, got %d", r.K)
	}
	if r.User != -1 && (r.User < 0 || r.User >= c.User.Rows()) {
		return fmt.Errorf("serve: user %d out of range [0,%d)", r.User, c.User.Rows())
	}
	if r.User == -1 && c.P.MarkovOrder == 0 {
		return fmt.Errorf("serve: session requests need a model with MarkovOrder > 0")
	}
	return nil
}

// Recommend executes one request against the current snapshot.
func (s *Server) Recommend(req Request) ([]vecmath.Scored, error) {
	resp := s.run(s.snap.Load(), req)
	return resp.Items, resp.Err
}

// run executes one request against a pinned snapshot with a pooled query
// buffer. It is the single dispatch point shared by Recommend and Batch.
func (s *Server) run(c *model.Composed, req Request) Response {
	if err := req.validate(c); err != nil {
		return Response{Err: err}
	}
	q := s.getBuf(c.K())
	defer s.putBuf(q)
	if req.User == -1 {
		c.BuildSessionQueryInto(req.Recent, q)
	} else {
		c.BuildQueryInto(req.User, req.Recent, q)
	}
	parallel := s.sweep != nil && req.Workers != 1
	f32 := s.effectivePrecision(c, req) == model.PrecisionF32
	switch {
	case req.Cascade != nil:
		var (
			top []vecmath.Scored
			err error
		)
		switch {
		case parallel && f32:
			top, _, err = s.sweep.CascadeF32(c, q, *req.Cascade, req.K, req.Workers)
		case parallel:
			top, _, err = s.sweep.Cascade(c, q, *req.Cascade, req.K, req.Workers)
		case f32:
			top, _, err = infer.CascadeF32(c, q, *req.Cascade, req.K)
		default:
			top, _, err = infer.Cascade(c, q, *req.Cascade, req.K)
		}
		return Response{Items: top, Err: err}
	case req.MaxPerCategory > 0:
		depth := req.CatDepth
		if depth == 0 {
			depth = c.Tree.Depth() - 1
		}
		var (
			items []vecmath.Scored
			err   error
		)
		switch {
		case parallel && f32:
			items, err = s.sweep.DiversifiedF32(c, q, req.K, req.MaxPerCategory, depth, req.Workers)
		case parallel:
			items, err = s.sweep.Diversified(c, q, req.K, req.MaxPerCategory, depth, req.Workers)
		case f32:
			items, err = infer.DiversifiedF32(c, q, req.K, req.MaxPerCategory, depth)
		default:
			items, err = infer.Diversified(c, q, req.K, req.MaxPerCategory, depth)
		}
		return Response{Items: items, Err: err}
	default:
		switch {
		case parallel && f32:
			return Response{Items: s.sweep.NaiveF32(c, q, req.K, req.Workers)}
		case parallel:
			return Response{Items: s.sweep.Naive(c, q, req.K, req.Workers)}
		case f32:
			return Response{Items: infer.NaiveF32(c, q, req.K)}
		default:
			return Response{Items: infer.Naive(c, q, req.K)}
		}
	}
}

// Response pairs a request's result with its error.
type Response struct {
	Items []vecmath.Scored
	Err   error
}

// Batch executes requests concurrently across workers goroutines
// (<=0 uses one per request up to 16) against a single consistent
// snapshot. Query buffers come from the server's pool, so a steady batch
// load allocates no per-request scratch.
func (s *Server) Batch(reqs []Request, workers int) []Response {
	if workers <= 0 {
		workers = len(reqs)
		if workers > 16 {
			workers = 16
		}
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// pin one snapshot for the whole batch so results are mutually
	// consistent even if Update races
	c := s.snap.Load()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(reqs); i += workers {
				out[i] = s.run(c, reqs[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}
