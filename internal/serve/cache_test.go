package serve

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/vecmath"
)

// A cache hit must be byte-identical to the uncached computation, and an
// Update (epoch bump) must atomically invalidate: the next request
// recomputes on the new snapshot and matches a cache-less server exactly.
func TestCacheHitIdenticalAcrossEpochBump(t *testing.T) {
	m, data := trainedModel(t)
	cached := New(m, WithCache(64))
	plain := New(m)
	req := Request{User: 3, Recent: data.Users[3].Baskets, K: 7}

	want, err := plain.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cached.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cached.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, first) || !reflect.DeepEqual(want, hit) {
		t.Fatal("cached path diverged from uncached ranking")
	}
	cs, ok := cached.CacheStats()
	if !ok || cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %+v", cs)
	}

	// hot swap (same weights, new snapshot): the stale entry must never
	// be served, and the recomputed result must again match uncached
	cached.Update(m)
	after, err := cached.Recommend(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, after) {
		t.Fatal("post-reload ranking diverged")
	}
	cs, _ = cached.CacheStats()
	if cs.Epoch != 1 || cs.Stale != 1 || cs.Hits != 1 {
		t.Fatalf("epoch bump not honored: %+v", cs)
	}
}

// Requests differing only in execution knobs (Workers, Precision) or in
// category list order share one cache entry — the executor's rankings are
// byte-identical across all of them.
func TestCacheKeyCanonicalization(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m, WithCache(64))
	base := Request{User: 2, K: 5, Categories: []int32{3, 1, 2}}
	if _, err := s.Recommend(base); err != nil {
		t.Fatal(err)
	}
	variants := []Request{
		{User: 2, K: 5, Categories: []int32{1, 2, 3}},
		{User: 2, K: 5, Categories: []int32{3, 1, 2}, Workers: 1},
		{User: 2, K: 5, Categories: []int32{2, 3, 1}, Precision: model.PrecisionF64},
	}
	want, _ := s.Recommend(base)
	for i, v := range variants {
		got, err := s.Recommend(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("variant %d diverged", i)
		}
	}
	cs, _ := s.CacheStats()
	if cs.Misses != 1 {
		t.Fatalf("canonicalization failed: %d misses for one canonical request", cs.Misses)
	}

	// different page or filter = different entry
	if _, err := s.Recommend(Request{User: 2, K: 5, Categories: []int32{1, 2, 3}, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	cs, _ = s.CacheStats()
	if cs.Misses != 2 {
		t.Fatalf("offset variant should miss, got %+v", cs)
	}
}

// The LRU must evict the coldest entry at capacity and keep hot ones.
func TestCacheLRUEviction(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m, WithCache(2))
	reqs := []Request{{User: 0, K: 3}, {User: 1, K: 3}, {User: 2, K: 3}}
	for _, r := range reqs[:2] {
		if _, err := s.Recommend(r); err != nil {
			t.Fatal(err)
		}
	}
	// touch user 0 so user 1 is the LRU victim
	if _, err := s.Recommend(reqs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recommend(reqs[2]); err != nil { // evicts user 1
		t.Fatal(err)
	}
	if _, err := s.Recommend(reqs[0]); err != nil { // still cached
		t.Fatal(err)
	}
	cs, _ := s.CacheStats()
	if cs.Evictions != 1 || cs.Size != 2 || cs.Hits != 2 {
		t.Fatalf("unexpected LRU behavior: %+v", cs)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	if _, ok := s.CacheStats(); ok {
		t.Fatal("cache should be disabled without WithCache")
	}
	if _, err := s.Recommend(Request{User: 1, K: 3}); err != nil {
		t.Fatal(err)
	}
}

// Regression: two misses racing to fill one key while a third request
// reads it — get must snapshot the entry's slice header under the lock
// (put overwrites it in place). Run with -race.
func TestCacheConcurrentGetPutSameKey(t *testing.T) {
	rc := newResultCache(4)
	itemsA := []vecmath.Scored{{ID: 1, Score: 1}}
	itemsB := []vecmath.Scored{{ID: 2, Score: 2}, {ID: 3, Score: 1}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if w%2 == 0 {
					if i%2 == 0 {
						rc.Put(0, "k", itemsA)
					} else {
						rc.Put(0, "k", itemsB)
					}
				} else if got, ok := rc.Get(0, "k"); ok {
					if len(got) != 1 && len(got) != 2 {
						t.Errorf("torn read: %v", got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
