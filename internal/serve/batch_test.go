package serve

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/vecmath"
)

// A server with a pool must return exactly what the serial server
// returns, for every request flavor.
func TestParallelServerMatchesSerial(t *testing.T) {
	m, data := trainedModel(t)
	serial := New(m)
	parallel := New(m, WithWorkers(4))
	defer parallel.Close()
	parallel.Snapshot().Index.SetShardItems(37) // force many shards on the tiny catalog

	reqs := []Request{
		{User: 3, Recent: data.Users[3].Baskets, K: 7},
		{User: -1, Recent: data.Users[5].Baskets, K: 5},
		{User: 8, K: 4, Cascade: &infer.CascadeConfig{KeepFrac: []float64{0.5, 0.5, 0.5}}},
		{User: 2, K: 6, MaxPerCategory: 2},
	}
	for i, req := range reqs {
		want, err := serial.Recommend(req)
		if err != nil {
			t.Fatalf("req %d serial: %v", i, err)
		}
		for _, workers := range []int{0, 2, 3} {
			req.Workers = workers
			got, err := parallel.Recommend(req)
			if err != nil {
				t.Fatalf("req %d workers=%d: %v", i, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("req %d workers=%d: parallel ranking diverged\nwant %v\ngot  %v", i, workers, want, got)
			}
		}
	}
}

// Concurrent batched requests must each receive exactly their individual
// serial ranking, and the batcher must actually coalesce them.
func TestBatcherCoalescesAndMatchesSerial(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m, WithWorkers(2))
	defer s.Close()
	serial := New(m)
	b := NewBatcher(s, 8, 5*time.Millisecond)

	const n = 16
	reqs := make([]Request, n)
	for i := range reqs {
		u := i % 20
		reqs[i] = Request{User: u, Recent: data.Users[u].Baskets, K: 3 + i%5}
	}
	reqs[4].User = -1                                   // session request in the same batch
	reqs[9] = Request{User: 1, K: 4, MaxPerCategory: 1} // non-naive: per-request path
	reqs[11] = Request{User: 999999, K: 5}              // invalid user: per-request error
	want := make([]Response, n)
	for i, req := range reqs {
		items, err := serial.Recommend(req)
		want[i] = Response{Items: items, Err: err}
	}

	got := make([]Response, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			items, err := b.Recommend(reqs[i])
			got[i] = Response{Items: items, Err: err}
		}(i)
	}
	wg.Wait()

	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("req %d: error mismatch: want %v, got %v", i, want[i].Err, got[i].Err)
		}
		if want[i].Err == nil && !reflect.DeepEqual(want[i].Items, got[i].Items) {
			t.Fatalf("req %d: batched ranking diverged\nwant %v\ngot  %v", i, want[i].Items, got[i].Items)
		}
	}
	batches, coalesced := b.Stats()
	if coalesced != n {
		t.Fatalf("batcher saw %d requests, want %d", coalesced, n)
	}
	if batches == 0 || batches > n {
		t.Fatalf("implausible batch count %d for %d requests", batches, n)
	}
}

// The window path must cut a lone request's batch without waiting for
// maxBatch to fill.
func TestBatcherWindowFlushesPartialBatch(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	b := NewBatcher(s, 64, time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := b.Recommend(Request{User: 0, Recent: data.Users[0].Baskets, K: 3}); err != nil {
			t.Errorf("lone batched request: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher never flushed a partial batch")
	}
}

// Close must flush a pending micro-batch immediately: a caller parked on
// a long window gets its (correct) result now, not at window expiry and
// not never.
func TestBatcherCloseFlushesPending(t *testing.T) {
	m, data := trainedModel(t)
	s := New(m)
	serial := New(m)
	// an hour-long window: only Close can release the caller in time
	b := NewBatcher(s, 64, time.Hour)
	want, err := serial.Recommend(Request{User: 2, Recent: data.Users[2].Baskets, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		items []vecmath.Scored
		err   error
	}
	done := make(chan result, 1)
	go func() {
		items, err := b.Recommend(Request{User: 2, Recent: data.Users[2].Baskets, K: 4})
		done <- result{items, err}
	}()
	// wait until the request is actually queued in the current batch
	for i := 0; i < 5000; i++ {
		b.mu.Lock()
		queued := b.cur != nil && len(b.cur.reqs) > 0
		b.mu.Unlock()
		if queued {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("flushed request errored: %v", r.err)
		}
		if !reflect.DeepEqual(want, r.items) {
			t.Fatal("flushed request returned a wrong ranking")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("caller still hanging after Close: pending batch was not flushed")
	}
	// Close is idempotent and post-Close traffic still gets answers
	b.Close()
	items, err := b.Recommend(Request{User: 3, Recent: data.Users[3].Baskets, K: 3})
	if err != nil || len(items) != 3 {
		t.Fatalf("post-close request: items=%d err=%v", len(items), err)
	}
}

// Closing with nothing pending must not block or break later requests.
func TestBatcherCloseEmpty(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	b := NewBatcher(s, 8, time.Millisecond)
	b.Close()
	if _, err := b.Recommend(Request{User: 1, K: 2}); err != nil {
		t.Fatal(err)
	}
}
