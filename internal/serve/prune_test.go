package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
)

// Pruned requests must return byte-identical pages to dense requests —
// per request, as the server default, and across precision overrides.
func TestPrunedRequestsMatchDense(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m, WithWorkers(4))
	defer s.Close()
	base := Request{User: 3, K: 7, Offset: 2, Recent: nil}
	want, err := s.Recommend(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []model.Precision{model.PrecisionDefault, model.PrecisionF64, model.PrecisionInt8} {
		req := base
		req.Pruned = true
		req.Precision = prec
		got, err := s.Recommend(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("prec %v: %d items, want %d", prec, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prec %v rank %d: %+v vs %+v", prec, i, got[i], want[i])
			}
		}
	}

	// server-level default: same page, no per-request flag
	sp := New(m, WithPruned(true))
	got, err := sp.Recommend(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("server default rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}

	// the knob is ignored (not rejected) on taxonomy-walking strategies
	req := base
	req.Pruned = true
	req.MaxPerCategory = 2
	if _, err := s.Recommend(req); err != nil {
		t.Fatalf("pruned+diversified should ignore the knob, got %v", err)
	}
}

// The wire surfaces: the "pruned" JSON field and ?pruned= parameter both
// reach the plan, bad values are 400s, and /v1/stats reports the counters.
func TestHTTPPruned(t *testing.T) {
	m, _ := trainedModel(t)
	h := NewHTTP(New(m), nil)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	want, err := h.srv.Recommend(Request{User: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := infer.PruneCounters()
	for _, url := range []string{
		ts.URL + "/v1/recommend/user",
		ts.URL + "/v1/recommend/user?pruned=true",
	} {
		body := `{"user":3,"k":5}`
		if url == ts.URL+"/v1/recommend/user" {
			body = `{"user":3,"k":5,"pruned":true}`
		}
		resp, out := postJSON(t, ts.Client(), url, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		for i := range want {
			if out.Items[i].Item != want[i].ID || out.Items[i].Score != want[i].Score {
				t.Fatalf("%s rank %d: %+v vs %+v", url, i, out.Items[i], want[i])
			}
		}
	}
	if after := infer.PruneCounters(); after.BoundEvals <= before.BoundEvals {
		t.Fatal("pruned requests evaluated no bounds")
	}

	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/recommend/user?pruned=maybe", `{"user":3,"k":5}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pruned parameter: status %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Inference.Pruning.BoundEvals <= 0 {
		t.Fatal("stats report no bound evaluations after pruned traffic")
	}
	if stats.Inference.Pruning.Default {
		t.Fatal("stats report a pruned default on a dense-default server")
	}
}

// A pruned request must bypass the batcher's shared sweep (ExecuteBatch
// rejects pruned plans) yet still answer correctly through it.
func TestBatcherPrunedOptOut(t *testing.T) {
	m, _ := trainedModel(t)
	s := New(m)
	b := NewBatcher(s, 8, 0)
	defer b.Close()
	want, err := s.Recommend(Request{User: 5, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Recommend(Request{User: 5, K: 4, Pruned: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
