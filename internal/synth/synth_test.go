package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

func testTree(t *testing.T) *taxonomy.Tree {
	t.Helper()
	return taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{4, 12, 36},
		Items:          600,
		Skew:           0.4,
	}, vecmath.NewRNG(99))
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 500
	return cfg
}

func TestGenerateBasics(t *testing.T) {
	tree := testTree(t)
	d, gt, err := Generate(tree, smallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if d.NumUsers() != 500 {
		t.Fatalf("NumUsers = %d", d.NumUsers())
	}
	if d.NumItems != tree.NumItems() {
		t.Fatalf("NumItems = %d, want %d", d.NumItems, tree.NumItems())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(gt.UserCats) != 500 {
		t.Fatalf("UserCats len = %d", len(gt.UserCats))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tree := testTree(t)
	a, _, _ := Generate(tree, smallConfig())
	b, _, _ := Generate(tree, smallConfig())
	if a.NumPurchases() != b.NumPurchases() {
		t.Fatal("same config must generate the same log")
	}
	for u := range a.Users {
		if len(a.Users[u].Baskets) != len(b.Users[u].Baskets) {
			t.Fatalf("user %d transaction count differs", u)
		}
	}
}

func TestGenerateSeedChangesLog(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	a, _, _ := Generate(tree, cfg)
	cfg.Seed = 777
	b, _, _ := Generate(tree, cfg)
	if a.NumPurchases() == b.NumPurchases() {
		// counts could coincide; compare first user's first basket too
		if len(a.Users[0].Baskets) > 0 && len(b.Users[0].Baskets) > 0 &&
			a.Users[0].Baskets[0][0] == b.Users[0].Baskets[0][0] {
			t.Log("warning: seeds produced identical prefix; acceptable but unlikely")
		}
	}
}

func TestMeanTransactionsRoughlyMatches(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.Users = 2000
	cfg.MeanTxns = 5
	d, _, err := Generate(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(d.NumTransactions()) / float64(d.NumUsers())
	if mean < 3.5 || mean > 6.5 {
		t.Fatalf("mean txns per user = %v, want ~5", mean)
	}
}

func TestBasketsRespectMaxSize(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.MaxBasket = 3
	d, _, _ := Generate(tree, cfg)
	for u := range d.Users {
		for _, b := range d.Users[u].Baskets {
			if len(b) == 0 || len(b) > 3 {
				t.Fatalf("basket size %d out of [1,3]", len(b))
			}
			for i := 0; i < len(b); i++ {
				for j := i + 1; j < len(b); j++ {
					if b[i] == b[j] {
						t.Fatalf("duplicate item %d in basket", b[i])
					}
				}
			}
		}
	}
}

func TestUserInterestsDominatePurchases(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.PFollow = 0 // isolate long-term behaviour
	cfg.PSkip = 0
	cfg.Explore = 0.05
	d, gt, _ := Generate(tree, cfg)
	leafCatDepth := tree.Depth() - 1
	inInterest, total := 0, 0
	for u := range d.Users {
		interests := make(map[int32]bool)
		for _, c := range gt.UserCats[u] {
			interests[c] = true
		}
		for _, b := range d.Users[u].Baskets {
			for _, it := range b {
				cat := int32(tree.AncestorAtDepth(tree.ItemNode(int(it)), leafCatDepth))
				if interests[cat] {
					inInterest++
				}
				total++
			}
		}
	}
	frac := float64(inInterest) / float64(total)
	if frac < 0.8 {
		t.Fatalf("only %.2f of purchases fall in user interests, want >= 0.8", frac)
	}
}

func TestSuccessorTransitionsHaveLift(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.Users = 3000
	cfg.PFollow = 0.5
	d, gt, _ := Generate(tree, cfg)
	leafCatDepth := tree.Depth() - 1
	catOf := func(item int32) int {
		return gt.CatIndex[int32(tree.AncestorAtDepth(tree.ItemNode(int(item)), leafCatDepth))]
	}
	followed, transitions := 0, 0
	for u := range d.Users {
		bs := d.Users[u].Baskets
		for t := 1; t < len(bs); t++ {
			prev := catOf(bs[t-1][0])
			cur := catOf(bs[t][0])
			if int32(cur) == gt.Successor[prev] {
				followed++
			}
			transitions++
		}
	}
	if transitions == 0 {
		t.Fatal("no transitions generated")
	}
	rate := float64(followed) / float64(transitions)
	nCats := len(tree.Level(leafCatDepth))
	chance := 1.0 / float64(nCats)
	if rate < 10*chance {
		t.Fatalf("successor rate %.3f shows no lift over chance %.3f", rate, chance)
	}
}

func TestColdItemsAppearLate(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.Users = 3000
	cfg.ColdFrac = 0.15
	d, gt, _ := Generate(tree, cfg)
	cold := make(map[int32]bool)
	for _, it := range gt.ColdItems {
		cold[it] = true
	}
	if len(cold) == 0 {
		t.Fatal("no cold items generated")
	}
	earlyCold, early := 0, 0
	for u := range d.Users {
		bs := d.Users[u].Baskets
		half := len(bs) / 2
		for t := 0; t < half; t++ {
			for _, it := range bs[t] {
				if cold[it] {
					earlyCold++
				}
				early++
			}
		}
	}
	if early > 0 {
		frac := float64(earlyCold) / float64(early)
		if frac > 0.05 {
			t.Fatalf("cold items make up %.3f of early purchases, want < 0.05", frac)
		}
	}
	// cold items must exist somewhere in the log (late transactions)
	freq := d.ItemFrequencies()
	seenCold := 0
	for _, it := range gt.ColdItems {
		if freq[it] > 0 {
			seenCold++
		}
	}
	if seenCold == 0 {
		t.Fatal("no cold item was ever purchased; cold-start experiment would be vacuous")
	}
}

func TestPopularityHeavyTail(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.Users = 3000
	d, _, _ := Generate(tree, cfg)
	freq := d.ItemFrequencies()
	top := d.TopPopularItems(len(freq) / 100) // top 1%
	var topMass, total int
	for _, it := range top {
		topMass += freq[it]
	}
	for _, f := range freq {
		total += f
	}
	share := float64(topMass) / float64(total)
	if share < 0.08 {
		t.Fatalf("top 1%% of items hold %.3f of purchases, want a heavy head (>= 0.08)", share)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	tree := testTree(t)
	bad := []Config{
		func() Config { c := DefaultConfig(); c.Users = 0; return c }(),
		func() Config { c := DefaultConfig(); c.MaxBasket = 0; return c }(),
		func() Config { c := DefaultConfig(); c.MeanTxns = 0.5; return c }(),
	}
	for i, cfg := range bad {
		if _, _, err := Generate(tree, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// too-shallow taxonomy
	flat, err := taxonomy.NewFromParents([]int{taxonomy.NoParent, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Generate(flat, DefaultConfig()); err == nil {
		t.Error("expected error for depth-1 taxonomy")
	}
}

// The sparsity headline of the paper: the generated log must be sparse at
// the item level (each user touches a vanishing fraction of the catalog)
// while covering categories densely in aggregate.
func TestSparsityRegime(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	cfg.Users = 2000
	d, _, _ := Generate(tree, cfg)
	var maxDistinct int
	for u := range d.Users {
		if n := d.Users[u].DistinctItems(); n > maxDistinct {
			maxDistinct = n
		}
	}
	if frac := float64(maxDistinct) / float64(d.NumItems); frac > 0.2 {
		t.Fatalf("heaviest user touches %.2f of the catalog; not sparse", frac)
	}
	// aggregate category coverage
	leafCatDepth := tree.Depth() - 1
	seen := make(map[int]bool)
	for u := range d.Users {
		for _, b := range d.Users[u].Baskets {
			for _, it := range b {
				seen[tree.AncestorAtDepth(tree.ItemNode(int(it)), leafCatDepth)] = true
			}
		}
	}
	if cover := float64(len(seen)) / float64(len(tree.Level(leafCatDepth))); cover < 0.9 {
		t.Fatalf("only %.2f of categories ever purchased", cover)
	}
}

// Splitting the synthetic log with the paper's protocol must leave test
// events for a healthy share of users — otherwise accuracy metrics would
// be computed over nothing.
func TestSplitLeavesTestData(t *testing.T) {
	tree := testTree(t)
	d, _, _ := Generate(tree, smallConfig())
	s := d.Split(dataset.DefaultSplitConfig())
	withTest := 0
	for u := range s.Test.Users {
		if len(s.Test.Users[u].Baskets) > 0 {
			withTest++
		}
	}
	if frac := float64(withTest) / float64(d.NumUsers()); frac < 0.3 {
		t.Fatalf("only %.2f of users have test data", frac)
	}
}

func TestReleaseTimesWithinBounds(t *testing.T) {
	tree := testTree(t)
	cfg := smallConfig()
	_, gt, _ := Generate(tree, cfg)
	for _, it := range gt.ColdItems {
		r := gt.Release[it]
		if r < cfg.ColdReleaseMin || r > cfg.ColdReleaseMax {
			t.Fatalf("cold release %v outside [%v,%v]", r, cfg.ColdReleaseMin, cfg.ColdReleaseMax)
		}
	}
	nonCold := 0
	for _, r := range gt.Release {
		if r == 0 {
			nonCold++
		}
	}
	if nonCold == 0 {
		t.Fatal("all items cold?")
	}
	if math.Abs(float64(len(gt.ColdItems))-cfg.ColdFrac*float64(tree.NumItems())) > 1 {
		t.Fatalf("cold count %d does not match ColdFrac", len(gt.ColdItems))
	}
}
