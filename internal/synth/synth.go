// Package synth generates synthetic purchase logs that stand in for the
// proprietary Yahoo! shopping dataset of Kanagal et al. (VLDB 2012) §7.1.
//
// The generator is a discrete hierarchical model chosen so that every
// phenomenon the paper's evaluation depends on is present and tunable:
//
//   - Long-term interests: each user owns a stable mixture over a handful
//     of leaf categories, reached by descending the taxonomy from sampled
//     top-level interests. Item-level interactions stay extremely sparse
//     while category-level signal is strong — exactly the regime where the
//     taxonomy prior pays off.
//   - Short-term dynamics: an explicit category-to-category successor
//     chain (camera → flash card → lens). With probability PFollow the
//     next basket's category follows the successor of the previous
//     basket's category; with probability PSkip it follows the successor
//     of the category bought *two* transactions ago, a genuinely
//     second-order dependency that rewards higher-order Markov models
//     (Figure 7(f)).
//   - Popularity: items within a category are drawn from a Zipf
//     distribution, giving the heavy-tailed popularity of Figure 5(c).
//   - Cold start: a ColdFrac slice of items carries a late release time
//     and can only be purchased late in a user's sequence, so under the
//     µ-split they appear (almost) only in test — the paper's "new items".
package synth

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// Config controls the generative model. Zero values are filled in by
// (*Config).withDefaults; construct via DefaultConfig and override fields.
type Config struct {
	// Users is the number of users to simulate.
	Users int
	// MeanTxns is the mean number of transactions per user (geometric
	// tail, minimum 1). The paper's log averages 2.3 purchases per user;
	// accuracy experiments need a little more history to have a test side.
	MeanTxns float64
	// MaxBasket is the largest basket size; sizes are uniform in
	// [1, MaxBasket].
	MaxBasket int
	// Interests is how many leaf categories anchor a user's long-term
	// preference mixture.
	Interests int
	// Explore is the probability that a preference draw ignores the
	// user's interests and picks a uniformly random leaf category (noise).
	Explore float64
	// PFollow is the probability that a basket's category is the
	// successor of the previous basket's category (first-order dynamics).
	PFollow float64
	// PSkip is the probability that a basket's category is the successor
	// of the category from two baskets ago (second-order dynamics).
	PSkip float64
	// ZipfItems is the Zipf exponent for item popularity within a
	// category.
	ZipfItems float64
	// ZipfCats is the Zipf exponent used when descending the taxonomy to
	// pick interest categories (category popularity skew).
	ZipfCats float64
	// ColdFrac is the fraction of items with a late release time.
	ColdFrac float64
	// ColdReleaseMin/Max bound the release times (fractions of each
	// user's sequence) of cold items.
	ColdReleaseMin, ColdReleaseMax float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns the settings used by the experiment harness at
// "small" scale; only Users typically needs overriding.
func DefaultConfig() Config {
	return Config{
		Users:          2000,
		MeanTxns:       6,
		MaxBasket:      2,
		Interests:      2,
		Explore:        0.1,
		PFollow:        0.45,
		PSkip:          0.15,
		ZipfItems:      1.1,
		ZipfCats:       0.8,
		ColdFrac:       0.08,
		ColdReleaseMin: 0.55,
		ColdReleaseMax: 0.95,
		Seed:           42,
	}
}

// GroundTruth records the hidden state of the generator so tests and
// diagnostics can verify that the intended structure actually made it into
// the log. Models never see this.
type GroundTruth struct {
	// UserCats[u] is user u's interest leaf-category nodes.
	UserCats [][]int32
	// Successor[c] is the dense index (see CatIndex) of the successor
	// leaf-category of the c-th leaf category, driving chain dynamics.
	Successor []int32
	// CatIndex maps a leaf-category node id to its dense index.
	CatIndex map[int32]int
	// Release[i] is item i's release time in [0,1); 0 = always available.
	Release []float64
	// ColdItems lists the item ids with nonzero release times.
	ColdItems []int32
}

// Generate simulates a purchase log over the given taxonomy. The returned
// dataset indexes items by taxonomy item id (leaf order).
func Generate(tree *taxonomy.Tree, cfg Config, rngSeedOverride ...uint64) (*dataset.Dataset, *GroundTruth, error) {
	if cfg.Users <= 0 {
		return nil, nil, fmt.Errorf("synth: Users must be positive, got %d", cfg.Users)
	}
	if cfg.MaxBasket <= 0 {
		return nil, nil, fmt.Errorf("synth: MaxBasket must be positive, got %d", cfg.MaxBasket)
	}
	if cfg.MeanTxns < 1 {
		return nil, nil, fmt.Errorf("synth: MeanTxns must be >= 1, got %v", cfg.MeanTxns)
	}
	if tree.Depth() < 2 {
		return nil, nil, fmt.Errorf("synth: taxonomy depth %d too shallow (need categories above items)", tree.Depth())
	}
	if !tree.IsUniformDepth() {
		return nil, nil, fmt.Errorf("synth: taxonomy must have uniform leaf depth")
	}
	seed := cfg.Seed
	if len(rngSeedOverride) > 0 {
		seed = rngSeedOverride[0]
	}
	rng := vecmath.NewRNG(seed)

	leafCatDepth := tree.Depth() - 1
	leafCats := tree.Level(leafCatDepth)
	nCats := len(leafCats)
	catIndex := make(map[int32]int, nCats)
	for i, c := range leafCats {
		catIndex[c] = i
	}

	gt := &GroundTruth{
		UserCats: make([][]int32, cfg.Users),
		CatIndex: catIndex,
		Release:  make([]float64, tree.NumItems()),
	}

	// --- successor chain over leaf categories -------------------------
	// A successor is a "cousin": another leaf category in the same
	// top-level department but under a different immediate parent
	// (camera → memory cards: same ELECTRONICS branch, different
	// subcategory). Keeping successors off the sibling set matters: the
	// paper's sibling-based training contrasts each category against its
	// siblings, which must not systematically be the user's next
	// purchase. Chains of successors arise naturally because every
	// category gets exactly one successor.
	gt.Successor = make([]int32, nCats)
	for i, c := range leafCats {
		gt.Successor[i] = int32(catIndex[pickCousin(tree, int(c), rng)])
	}

	// --- per-category item tables and popularity ----------------------
	catItems := make([][]int32, nCats)
	for i, c := range leafCats {
		for _, leaf := range tree.Children(int(c)) {
			catItems[i] = append(catItems[i], int32(tree.NodeItem(int(leaf))))
		}
	}
	catZipf := make([]*vecmath.Zipf, nCats)
	for i := range catItems {
		if len(catItems[i]) > 0 {
			catZipf[i] = vecmath.NewZipf(rng, len(catItems[i]), cfg.ZipfItems)
		}
	}

	// --- cold items ----------------------------------------------------
	nCold := int(cfg.ColdFrac * float64(tree.NumItems()))
	perm := rng.Perm(tree.NumItems())
	for _, item := range perm[:nCold] {
		span := cfg.ColdReleaseMax - cfg.ColdReleaseMin
		gt.Release[item] = cfg.ColdReleaseMin + span*rng.Float64()
		gt.ColdItems = append(gt.ColdItems, int32(item))
	}

	// --- interest descent sampler --------------------------------------
	// Descend from the root to a leaf category, at each step choosing a
	// child by a Zipf draw over the (fixed) child order; this concentrates
	// interest on "popular" categories the same way real catalogs do.
	descend := func() int32 {
		node := tree.Root()
		for tree.DepthOf(node) < leafCatDepth {
			children := tree.Children(node)
			idx := 0
			if len(children) > 1 {
				// cheap Zipf-ish draw: repeatedly halve the range
				idx = zipfIndex(rng, len(children), cfg.ZipfCats)
			}
			node = int(children[idx])
		}
		return int32(node)
	}

	d := &dataset.Dataset{NumItems: tree.NumItems(), Users: make([]dataset.History, cfg.Users)}
	pExtra := 1 - 1/cfg.MeanTxns // geometric continuation probability

	for u := 0; u < cfg.Users; u++ {
		// stable long-term interests
		interests := make([]int32, cfg.Interests)
		for i := range interests {
			interests[i] = descend()
		}
		gt.UserCats[u] = interests

		nTxns := 1
		for rng.Float64() < pExtra {
			nTxns++
		}
		prevCat, prevCat2 := -1, -1
		for t := 0; t < nTxns; t++ {
			tau := float64(t+1) / float64(nTxns+1)
			cat := chooseCategory(rng, cfg, gt, interests, prevCat, prevCat2, nCats)
			basket := drawBasket(rng, cfg, catItems[cat], catZipf[cat], gt.Release, tau)
			if len(basket) == 0 {
				// every item in the category is unreleased at tau; retry
				// with a preference draw from released categories
				for attempts := 0; attempts < 8 && len(basket) == 0; attempts++ {
					cat = interestOrExplore(rng, cfg, interests, catIndex, nCats)
					basket = drawBasket(rng, cfg, catItems[cat], catZipf[cat], gt.Release, tau)
				}
			}
			if len(basket) == 0 {
				continue
			}
			d.Users[u].Baskets = append(d.Users[u].Baskets, basket)
			prevCat2 = prevCat
			prevCat = cat
		}
	}
	return d, gt, nil
}

// chooseCategory implements the mixture of first-order chain, second-order
// skip and long-term preference that drives each basket's category.
func chooseCategory(rng *vecmath.RNG, cfg Config, gt *GroundTruth, interests []int32, prevCat, prevCat2, nCats int) int {
	r := rng.Float64()
	if prevCat >= 0 && r < cfg.PFollow {
		return int(gt.Successor[prevCat])
	}
	if prevCat2 >= 0 && r < cfg.PFollow+cfg.PSkip {
		return int(gt.Successor[prevCat2])
	}
	return interestOrExplore(rng, cfg, interests, gt.CatIndex, nCats)
}

// interestOrExplore draws a leaf-category index from the user's interests,
// or a uniform category with probability Explore.
func interestOrExplore(rng *vecmath.RNG, cfg Config, interests []int32, catIndex map[int32]int, nCats int) int {
	if rng.Float64() < cfg.Explore {
		return rng.Intn(nCats)
	}
	return catIndex[interests[rng.Intn(len(interests))]]
}

// drawBasket samples a basket of distinct items from one category,
// honouring release times. It returns nil if nothing is available.
func drawBasket(rng *vecmath.RNG, cfg Config, items []int32, zipf *vecmath.Zipf, release []float64, tau float64) dataset.Basket {
	if len(items) == 0 {
		return nil
	}
	size := 1 + rng.Intn(cfg.MaxBasket)
	if size > len(items) {
		size = len(items)
	}
	var basket dataset.Basket
	for attempts := 0; attempts < 12*size && len(basket) < size; attempts++ {
		item := items[zipf.Draw()]
		if release[item] > tau {
			continue
		}
		if basket.Contains(item) {
			continue
		}
		basket = append(basket, item)
	}
	return basket
}

// pickCousin returns a leaf category sharing node's top-level ancestor but
// not its immediate parent; it falls back to any same-level category when
// the department has no such cousin.
func pickCousin(tree *taxonomy.Tree, node int, rng *vecmath.RNG) int32 {
	level := tree.Level(tree.DepthOf(node))
	dept := tree.AncestorAtDepth(node, 1)
	parent := tree.Parent(node)
	for attempts := 0; attempts < 64; attempts++ {
		c := level[rng.Intn(len(level))]
		if int(c) == node || tree.Parent(int(c)) == parent {
			continue
		}
		if tree.AncestorAtDepth(int(c), 1) == dept {
			return c
		}
	}
	for attempts := 0; attempts < 64; attempts++ {
		c := level[rng.Intn(len(level))]
		if int(c) != node {
			return c
		}
	}
	return level[rng.Intn(len(level))]
}

// zipfIndex draws an index in [0,n) with P(i) proportional to 1/(i+1)^s
// without building a table (n is small: taxonomy fan-out).
func zipfIndex(rng *vecmath.RNG, n int, s float64) int {
	if s <= 0 || n <= 1 {
		if n <= 0 {
			return 0
		}
		return rng.Intn(n)
	}
	// inverse-CDF on the fly; fan-outs are tens of nodes so O(n) is fine
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	u := rng.Float64() * total
	var acc float64
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		if u <= acc {
			return i
		}
	}
	return n - 1
}
