package tfrec

// BenchmarkTopKI8* measure the quantized int8 two-stage pipeline (int8
// slab sweep into an over-fetched candidate heap, exact f64 rescore)
// against the f32 pipeline of the same shapes, and the blocked
// multi-query batch sweep against per-query serial execution. The gated
// pairs (see BENCH_baseline.json):
//
//	BenchmarkTopKI8BatchLoop  vs BenchmarkTopKI8BatchSweep (≥1.3x, any machine)
//	BenchmarkTopKF32Saturated vs BenchmarkTopKI8Saturated  (≥1.3x, ≥4 cores)
//	BenchmarkTopKF32Wide      vs BenchmarkTopKI8Wide       (≥1.0x, amd64/avx2 dispatch)
//
// The blocked batch win is compute amortization: the batch sweep scores
// a whole query group per pass over each slab block, work the per-query
// serial sweep repeats on every pass. The saturated pair is a bandwidth
// story: concurrent f32 sweeps stream ~4x the bytes of the quarter-size
// int8 slab and starve when every core contends, hence that floor gates
// only on ≥4-core machines, like the pool's other parallel-scaling
// floors. The wide single-core pair is the story the SIMD kernels
// (DESIGN.md §5.13) flipped: under scalar kernels int8 trailed f32 on a
// quiet core (integer multiplies issue on one port, float on two, and
// an L3-resident slab feeds f32's extra bytes for free — recorded
// honestly at ~0.83x in the pre-SIMD baselines), but AVX2 multiplies 32
// int8 codes per instruction against 8 f32 lanes, putting the wide
// sweep ~2x ahead. The ≥1.0x floor is conditioned on the amd64/avx2
// kernel set so generic-dispatch machines — where the old trade-off
// still holds — skip it rather than fail it.
// BenchmarkQuantize measures the one-time slab quantization cost a
// deployment pays on first int8 use.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/vecmath"
)

// BenchmarkQuantize is the per-row affine quantization of a wide-world
// sized slab (50k rows x 64 dims): the full cost of ensure8's item-slab
// pass, isolated at the vecmath layer.
func BenchmarkQuantize(b *testing.B) {
	const rows, cols = 50000, 64
	src := make([]float64, rows*cols)
	for i := range src {
		src[i] = float64(i%997)*0.01 - 4
	}
	dst := vecmath.NewMatrixI8(rows, cols)
	scale := make([]float64, rows)
	offset := make([]float64, rows)
	b.SetBytes(rows * cols * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.QuantizeFrom(src, scale, offset)
	}
}

// BenchmarkTopKI8Wide is the two-stage int8 pipeline on the wide world,
// gated ≥1.3x over BenchmarkTopKF32Wide with steady-state allocs pinned
// to the plan executor's fixed overhead.
func BenchmarkTopKI8Wide(b *testing.B) {
	c, q := benchWideWorld(b)
	pl := infer.Plan{Precision: model.PrecisionInt8, K: 10}
	st := vecmath.NewTopKStream(10)
	ctx := context.Background()
	// warm-up materializes the int8 slabs and the scratch pools so the
	// loop measures the steady-state sweep, not quantization
	if _, err := infer.ExecuteInto(ctx, c, q, pl, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.ExecuteInto(ctx, c, q, pl, st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKI8Saturated drives the pooled int8 pipeline from all
// benchmark goroutines at once — the regime the quantized tier exists
// for. The concurrent f32 sweeps of BenchmarkTopKF32Saturated contend
// for memory bandwidth on 4x the slab bytes, so on ≥4 cores this pair
// carries the ≥1.3x int8-over-f32 floor (skipped on smaller machines,
// where the ratio is meaningless — see the package comment).
func BenchmarkTopKI8Saturated(b *testing.B) {
	c, q := benchShardedWorld(b)
	pool := infer.NewPool(0)
	defer pool.Close()
	pl := infer.Plan{Precision: model.PrecisionInt8, K: 10}
	ctx := context.Background()
	// warm-up materializes the int8 slabs before the clock starts
	if _, err := pool.ExecuteInto(ctx, c, q, pl, vecmath.NewTopKStream(10)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := vecmath.NewTopKStream(10)
		for pb.Next() {
			if _, err := pool.ExecuteInto(ctx, c, q, pl, st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchWideBatchQueries derives a batch of distinct queries on the wide
// world — the int8 batch pair runs where the slab-read amortization the
// blocked kernel targets is actually bandwidth-bound.
func benchWideBatchQueries(b *testing.B, batch int) (*model.Composed, [][]float64) {
	c, base := benchWideWorld(b)
	qs := make([][]float64, batch)
	for i := range qs {
		qs[i] = make([]float64, len(base))
		copy(qs[i], base)
		qs[i][i%len(base)] += float64(i) * 0.25
	}
	return c, qs
}

// BenchmarkTopKI8BatchLoop executes a batch as independent serial int8
// queries — the "slow" side of the blocked multi-query pair; ns/op is
// per-batch.
func BenchmarkTopKI8BatchLoop(b *testing.B) {
	for _, batch := range []int{8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, qs := benchWideBatchQueries(b, batch)
			pl := infer.Plan{Precision: model.PrecisionInt8, K: 10}
			st := vecmath.NewTopKStream(10)
			ctx := context.Background()
			if _, err := infer.ExecuteInto(ctx, c, qs[0], pl, st); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := infer.ExecuteInto(ctx, c, q, pl, st); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTopKI8BatchSweep coalesces the same batch into one blocked
// multi-query int8 sweep — each slab block is read once per qBlock query
// group — gated ≥1.3x over BenchmarkTopKI8BatchLoop; ns/op is per-batch.
func BenchmarkTopKI8BatchSweep(b *testing.B) {
	for _, batch := range []int{8} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, qs := benchWideBatchQueries(b, batch)
			pls := make([]infer.Plan, batch)
			for i := range pls {
				pls[i] = infer.Plan{Precision: model.PrecisionInt8, K: 10}
			}
			ctx := context.Background()
			if _, err := (*infer.Pool)(nil).ExecuteBatch(ctx, c, qs, pls); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (*infer.Pool)(nil).ExecuteBatch(ctx, c, qs, pls); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
