package tfrec

import (
	"bytes"
	"testing"
)

// buildWorld generates a small taxonomy + log through the public API.
func buildWorld(t *testing.T) (*Taxonomy, *Dataset) {
	t.Helper()
	tree, err := GenerateTaxonomy(TaxonomyConfig{
		CategoryLevels: []int{3, 9, 27},
		Items:          270,
		Skew:           0.4,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSynthConfig()
	cfg.Users = 400
	log, _, err := GenerateLog(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree, log
}

func trainedRecommender(t *testing.T, tree *Taxonomy, data *Dataset) *Recommender {
	t.Helper()
	p := DefaultParams()
	p.K = 8
	p.TaxonomyLevels = tree.Depth()
	p.MarkovOrder = 1
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	rec, stats, err := Train(tree, data, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 {
		t.Fatal("no training happened")
	}
	return rec
}

func TestEndToEndTrainRecommend(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)

	top, err := rec.Recommend(0, log.Users[0].Baskets, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d recommendations", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("recommendations not sorted")
		}
	}
}

func TestRecommendRejectsBadUser(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	if _, err := rec.Recommend(-1, nil, 5); err == nil {
		t.Fatal("expected error for negative user")
	}
	if _, err := rec.Recommend(10_000_000, nil, 5); err == nil {
		t.Fatal("expected error for out-of-range user")
	}
}

func TestCascadedMatchesNaiveAtFullKeep(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	naive, err := rec.Recommend(3, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := rec.RecommendCascaded(3, nil, rec.UniformCascade(1.0), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range naive {
		if naive[i].ID != casc[i].ID {
			t.Fatalf("rank %d differs: %v vs %v", i, naive[i], casc[i])
		}
	}
}

func TestStructuredRankingLevels(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	sr, err := rec.RecommendStructured(5, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Levels) != tree.Depth()-1 {
		t.Fatalf("levels = %d, want %d", len(sr.Levels), tree.Depth()-1)
	}
	if len(sr.Items) != 5 {
		t.Fatalf("items = %d", len(sr.Items))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRecommender(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := rec.Recommend(2, nil, 5)
	b, err := back.Recommend(2, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model recommends differently")
		}
	}
}

func TestSplitAndEvaluate(t *testing.T) {
	tree, log := buildWorld(t)
	split := log.Split(DefaultSplitConfig())
	history := Concat(split.Train, split.Validation)

	p := DefaultParams()
	p.K = 8
	p.TaxonomyLevels = tree.Depth()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	rec, _, err := Train(tree, history, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rec.Evaluate(history, split.Test, DefaultEvalConfig())
	if res.Users == 0 {
		t.Fatal("no users evaluated")
	}
	if res.AUC < 0.6 {
		t.Fatalf("end-to-end AUC = %v, want > 0.6", res.AUC)
	}
}

func TestRecommendSession(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log) // MarkovOrder=1
	// anonymous session: recommendations react to the session basket
	basketA := []Basket{{0}}
	basketB := []Basket{{int32(log.NumItems - 1)}}
	a, err := rec.RecommendSession(basketA, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rec.RecommendSession(basketB, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].ID == b[i].ID {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("session context had no effect on the ranking")
	}
	// a model without a Markov term must refuse
	p := DefaultParams()
	p.K = 4
	p.TaxonomyLevels = tree.Depth()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	noMarkov, _, err := Train(tree, log, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noMarkov.RecommendSession(basketA, 5); err == nil {
		t.Fatal("expected error for session rec without Markov term")
	}
}

func TestRecommendDiversified(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	catDepth := tree.Depth() - 1
	out, err := rec.RecommendDiversified(0, nil, 12, 1, catDepth)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, s := range out {
		cat := tree.AncestorAtDepth(tree.ItemNode(s.ID), catDepth)
		if seen[cat] {
			t.Fatal("diversified list repeated a category despite quota 1")
		}
		seen[cat] = true
	}
}

func TestEvaluateTopKFacade(t *testing.T) {
	tree, log := buildWorld(t)
	split := log.Split(DefaultSplitConfig())
	history := Concat(split.Train, split.Validation)
	p := DefaultParams()
	p.K = 8
	p.TaxonomyLevels = tree.Depth()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	rec, _, err := Train(tree, history, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.EvaluateTopK(history, split.Test, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.NDCG < 0 || res.NDCG > 1 {
		t.Fatalf("NDCG = %v out of range", res.NDCG)
	}
	if res.Users == 0 {
		t.Fatal("nothing evaluated")
	}
}

func TestPaperTaxonomyConfig(t *testing.T) {
	cfg := PaperTaxonomyConfig(1000)
	tree, err := GenerateTaxonomy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", tree.Depth())
	}
}

func TestWarmStartGrowsUsers(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	before := rec.Model().NumUsers()

	// new users arrive with fresh transactions
	grown := &Dataset{NumItems: log.NumItems}
	grown.Users = append(grown.Users, log.Users...)
	for i := 0; i < 50; i++ {
		grown.Users = append(grown.Users, log.Users[i%len(log.Users)])
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := rec.WarmStart(grown, cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Model().NumUsers() != before+50 {
		t.Fatalf("users = %d, want %d", rec.Model().NumUsers(), before+50)
	}
	// the new users are recommendable
	top, err := rec.Recommend(before+10, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatal("no recommendations for grown user")
	}
}

func TestRefreshPicksUpModelChanges(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	before, _ := rec.Recommend(1, nil, 3)
	// zero out all factors directly: recommendations must change after
	// Refresh (scores collapse to ties)
	m := rec.Model()
	for i := range m.Node.Data() {
		m.Node.Data()[i] = 0
	}
	rec.Refresh()
	after, _ := rec.Recommend(1, nil, 3)
	if after[0].Score != 0 {
		t.Fatalf("after zeroing, top score = %v, want 0", after[0].Score)
	}
	_ = before
}

func TestRecommendPlanFacade(t *testing.T) {
	tree, log := buildWorld(t)
	rec := trainedRecommender(t, tree, log)
	recent := log.Users[0].Baskets

	// a plain plan matches the legacy facade call
	res, err := rec.RecommendPlan(0, recent, Plan{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec.Recommend(0, recent, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Items[i] != want[i] {
			t.Fatalf("rank %d: plan %v, legacy %v", i, res.Items[i], want[i])
		}
	}

	// a filtered plan drops the user's own purchases
	var bought []int32
	for _, b := range recent {
		bought = append(bought, b...)
	}
	res, err = rec.RecommendPlan(0, recent, Plan{K: 8, Filter: &Filter{ExcludeItems: bought}})
	if err != nil {
		t.Fatal(err)
	}
	set := map[int]bool{}
	for _, it := range bought {
		set[int(it)] = true
	}
	for _, it := range res.Items {
		if set[it.ID] {
			t.Fatalf("excluded item %d returned", it.ID)
		}
	}
	if res.Eligible >= tree.NumItems() {
		t.Fatalf("eligible %d not reduced", res.Eligible)
	}

	if _, err := rec.RecommendPlan(99999, nil, Plan{K: 3}); err == nil {
		t.Fatal("bad user accepted")
	}
}
