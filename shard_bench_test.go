package tfrec

// BenchmarkSharded* measure the PR-2 multi-core serving paths on a
// catalog large enough that the item slab (50k x 32 floats ≈ 12.8 MB)
// cannot live in one core's cache: the sharded pool sweep at several
// worker counts against the serial reference, the saturated-throughput
// regime, and the coalesced multi-query batch sweep. These benches are
// the subjects of the CI bench-regression gate (cmd/tfrec-benchgate,
// BENCH_baseline.json); all report allocations because the single-query
// pool path must stay allocation-free.

import (
	"fmt"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/taxonomy"
	"repro/internal/vecmath"
)

// benchShardedWorld builds a large untrained snapshot: ranking quality is
// irrelevant here, only the sweep shape matters.
func benchShardedWorld(b *testing.B) (*model.Composed, []float64) {
	b.Helper()
	tree := taxonomy.MustGenerate(taxonomy.GenConfig{
		CategoryLevels: []int{8, 64, 512},
		Items:          50000,
		Skew:           0.4,
	}, vecmath.NewRNG(7))
	m, err := model.New(tree, 10, model.Params{K: 32, TaxonomyLevels: 4, Alpha: 1, InitStd: 0.1, UseBias: true}, vecmath.NewRNG(8))
	if err != nil {
		b.Fatal(err)
	}
	c := m.Compose()
	q := make([]float64, 32)
	for i := range q {
		q[i] = float64(i%7) - 3
	}
	return c, q
}

// BenchmarkShardedTopKSerial is the single-core reference the parallel
// sweep is gated against (the ≥2x criterion compares workers=4 to this).
func BenchmarkShardedTopKSerial(b *testing.B) {
	c, q := benchShardedWorld(b)
	st := vecmath.NewTopKStream(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset(10)
		infer.NaiveInto(c, q, st)
		_ = st.Ranked()
	}
}

func BenchmarkShardedTopK(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c, q := benchShardedWorld(b)
			pool := infer.NewPool(workers)
			defer pool.Close()
			st := vecmath.NewTopKStream(10)
			// one warm-up pass populates the task/scratch recycling pools
			pool.NaiveInto(c, q, st, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset(10)
				pool.NaiveInto(c, q, st, 0)
				_ = st.Ranked()
			}
		})
	}
}

// BenchmarkShardedTopKSaturated drives the pool from all benchmark
// goroutines at once — the heavy-traffic regime where queries queue on
// the pool rather than idle cores.
func BenchmarkShardedTopKSaturated(b *testing.B) {
	c, q := benchShardedWorld(b)
	pool := infer.NewPool(0)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := vecmath.NewTopKStream(10)
		for pb.Next() {
			st.Reset(10)
			pool.NaiveInto(c, q, st, 0)
			_ = st.Ranked()
		}
	})
}

// BenchmarkShardedBatchSweep scores a coalesced batch with one pass over
// the slab; BenchmarkShardedBatchLoop is the same work as independent
// sweeps. Their ratio is the cache win of request batching; ns/op is
// per-batch in both.
func BenchmarkShardedBatchSweep(b *testing.B) {
	for _, batch := range []int{4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, qs := benchBatchQueries(b, batch)
			outs := make([]*vecmath.TopKStream, batch)
			for i := range outs {
				outs[i] = vecmath.NewTopKStream(10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range outs {
					outs[j].Reset(10)
				}
				infer.MultiNaiveInto(c, qs, outs)
			}
		})
	}
}

func BenchmarkShardedBatchLoop(b *testing.B) {
	for _, batch := range []int{4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, qs := benchBatchQueries(b, batch)
			st := vecmath.NewTopKStream(10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					st.Reset(10)
					infer.NaiveInto(c, q, st)
					_ = st.Ranked()
				}
			}
		})
	}
}

func benchBatchQueries(b *testing.B, batch int) (*model.Composed, [][]float64) {
	c, base := benchShardedWorld(b)
	qs := make([][]float64, batch)
	for i := range qs {
		qs[i] = make([]float64, len(base))
		copy(qs[i], base)
		qs[i][i%len(base)] += float64(i) * 0.25
	}
	return c, qs
}
